#include "src/serve/request.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/runner/runner.h"
#include "src/runner/thread_pool.h"

namespace spur::serve {

namespace {

bool
Fail(std::string* error, const std::string& message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

bool
EqualsIgnoreCase(const std::string& a, const char* b)
{
    size_t i = 0;
    for (; i < a.size() && b[i] != '\0'; ++i) {
        const char ca = (a[i] >= 'A' && a[i] <= 'Z')
                            ? static_cast<char>(a[i] - 'A' + 'a')
                            : a[i];
        const char cb = (b[i] >= 'A' && b[i] <= 'Z')
                            ? static_cast<char>(b[i] - 'A' + 'a')
                            : b[i];
        if (ca != cb) {
            return false;
        }
    }
    return i == a.size() && b[i] == '\0';
}

// The daemon must reject unknown names with a reason, so these match
// non-fatally against the canonical ToString spellings (the Parse*
// helpers in src/policy/ and the workload scripts call Fatal instead).

std::optional<core::WorkloadId>
WorkloadFromName(const std::string& name)
{
    for (const core::WorkloadId id : core::kAllWorkloads) {
        if (EqualsIgnoreCase(name, core::ToString(id))) {
            return id;
        }
    }
    return std::nullopt;
}

std::optional<policy::DirtyPolicyKind>
DirtyFromName(const std::string& name)
{
    for (const policy::DirtyPolicyKind kind :
         {policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
          policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
          policy::DirtyPolicyKind::kWrite,
          policy::DirtyPolicyKind::kSpurProt,
          policy::DirtyPolicyKind::kWriteHw}) {
        if (EqualsIgnoreCase(name, policy::ToString(kind))) {
            return kind;
        }
    }
    return std::nullopt;
}

std::optional<policy::RefPolicyKind>
RefFromName(const std::string& name)
{
    for (const policy::RefPolicyKind kind :
         {policy::RefPolicyKind::kMiss, policy::RefPolicyKind::kRef,
          policy::RefPolicyKind::kNoRef}) {
        if (EqualsIgnoreCase(name, policy::ToString(kind))) {
            return kind;
        }
    }
    return std::nullopt;
}

/** Shortest-round-trip double literal (matches stats::JsonWriter). */
std::string
NumberToJson(double value)
{
    if (!std::isfinite(value)) {
        return "null";
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

bool
ReadUint(const sweep::JsonValue& object, const char* key, uint64_t* out,
         std::string* error)
{
    const sweep::JsonValue* field = object.Find(key);
    if (field == nullptr) {
        return Fail(error, std::string("missing '") + key + "'");
    }
    const std::optional<uint64_t> value = field->AsUint64();
    if (!value) {
        return Fail(error, std::string("'") + key +
                               "' must be a non-negative integer");
    }
    *out = *value;
    return true;
}

bool
ParseCell(const sweep::JsonValue& value, size_t index,
          core::RunConfig* out, std::string* error)
{
    const std::string where = "cells[" + std::to_string(index) + "]: ";
    if (!value.IsObject()) {
        return Fail(error, where + "cell must be an object");
    }
    core::RunConfig config;
    bool saw_workload = false;
    for (const auto& [key, field] : value.members()) {
        if (key == "workload") {
            if (!field.IsString()) {
                return Fail(error, where + "'workload' must be a string");
            }
            const std::optional<core::WorkloadId> id =
                WorkloadFromName(field.AsString());
            if (!id) {
                return Fail(error, where + "unknown workload '" +
                                       field.AsString() + "'");
            }
            config.workload = *id;
            saw_workload = true;
        } else if (key == "memory_mb") {
            const std::optional<uint64_t> mb = field.AsUint64();
            if (!mb || *mb == 0 || *mb > UINT32_MAX) {
                return Fail(error, where + "'memory_mb' must be a "
                                           "positive integer");
            }
            config.memory_mb = static_cast<uint32_t>(*mb);
        } else if (key == "dirty") {
            if (!field.IsString()) {
                return Fail(error, where + "'dirty' must be a string");
            }
            const std::optional<policy::DirtyPolicyKind> kind =
                DirtyFromName(field.AsString());
            if (!kind) {
                return Fail(error, where + "unknown dirty policy '" +
                                       field.AsString() + "'");
            }
            config.dirty = *kind;
        } else if (key == "ref") {
            if (!field.IsString()) {
                return Fail(error, where + "'ref' must be a string");
            }
            const std::optional<policy::RefPolicyKind> kind =
                RefFromName(field.AsString());
            if (!kind) {
                return Fail(error, where + "unknown ref policy '" +
                                       field.AsString() + "'");
            }
            config.ref = *kind;
        } else if (key == "refs") {
            const std::optional<uint64_t> refs = field.AsUint64();
            if (!refs) {
                return Fail(error, where + "'refs' must be a "
                                           "non-negative integer");
            }
            config.refs = *refs;
        } else if (key == "seed") {
            const std::optional<uint64_t> seed = field.AsUint64();
            if (!seed) {
                return Fail(error, where + "'seed' must be a "
                                           "non-negative integer");
            }
            config.seed = *seed;
        } else if (key == "intensity") {
            const double intensity = field.AsDouble();
            if (!field.IsNumber() || !std::isfinite(intensity) ||
                intensity <= 0.0) {
                return Fail(error, where + "'intensity' must be a "
                                           "positive number");
            }
            config.intensity = intensity;
        } else if (key == "page_in_us") {
            const double page_in = field.AsDouble();
            if (!field.IsNumber() || !std::isfinite(page_in) ||
                page_in < 0.0) {
                return Fail(error, where + "'page_in_us' must be a "
                                           "non-negative number");
            }
            config.page_in_us = page_in;
        } else {
            return Fail(error, where + "unknown key '" + key + "'");
        }
    }
    if (!saw_workload) {
        return Fail(error, where + "missing 'workload'");
    }
    *out = config;
    return true;
}

}  // namespace

uint64_t
TotalCells(const SweepRequest& request)
{
    return static_cast<uint64_t>(request.configs.size()) * request.reps;
}

bool
ParseSweepRequestValue(const sweep::JsonValue& value, SweepRequest* out,
                       std::string* error)
{
    if (!value.IsObject()) {
        return Fail(error, "request must be an object");
    }
    SweepRequest request;
    bool saw_version = false;
    bool saw_name = false;
    bool saw_cells = false;
    for (const auto& [key, field] : value.members()) {
        if (key == "request_version") {
            uint64_t version = 0;
            if (!ReadUint(value, "request_version", &version, error)) {
                return false;
            }
            if (version != static_cast<uint64_t>(kRequestVersion)) {
                return Fail(error,
                            "unknown request_version " +
                                std::to_string(version) + " (expected " +
                                std::to_string(kRequestVersion) + ")");
            }
            saw_version = true;
        } else if (key == "name") {
            if (!field.IsString() || field.AsString().empty()) {
                return Fail(error, "'name' must be a non-empty string");
            }
            request.name = field.AsString();
            saw_name = true;
        } else if (key == "reps") {
            const std::optional<uint64_t> reps = field.AsUint64();
            if (!reps || *reps == 0 || *reps > (1u << 20)) {
                return Fail(error, "'reps' must be an integer in "
                                   "[1, 2^20]");
            }
            request.reps = static_cast<uint32_t>(*reps);
        } else if (key == "shuffle_seed") {
            const std::optional<uint64_t> seed = field.AsUint64();
            if (!seed) {
                return Fail(error, "'shuffle_seed' must be a "
                                   "non-negative integer");
            }
            request.shuffle_seed = *seed;
        } else if (key == "cells") {
            if (!field.IsArray() || field.items().empty()) {
                return Fail(error, "'cells' must be a non-empty array");
            }
            request.configs.reserve(field.items().size());
            for (size_t i = 0; i < field.items().size(); ++i) {
                core::RunConfig config;
                if (!ParseCell(field.items()[i], i, &config, error)) {
                    return false;
                }
                request.configs.push_back(config);
            }
            saw_cells = true;
        } else {
            return Fail(error, "unknown request key '" + key + "'");
        }
    }
    if (!saw_version) {
        return Fail(error, "missing 'request_version'");
    }
    if (!saw_name) {
        return Fail(error, "missing 'name'");
    }
    if (!saw_cells) {
        return Fail(error, "missing 'cells'");
    }
    *out = std::move(request);
    return true;
}

std::optional<SweepRequest>
ParseSweepRequest(const std::string& json, std::string* error)
{
    std::string parse_error;
    const std::optional<sweep::JsonValue> root =
        sweep::ParseJson(json, &parse_error);
    if (!root) {
        Fail(error, parse_error);
        return std::nullopt;
    }
    SweepRequest request;
    if (!ParseSweepRequestValue(*root, &request, error)) {
        return std::nullopt;
    }
    return request;
}

std::optional<SweepRequest>
LoadRequestFile(const std::string& path, std::string* error)
{
    FILE* file = (path == "-") ? stdin : std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        Fail(error, path + ": cannot open");
        return std::nullopt;
    }
    std::string contents;
    char buffer[1 << 16];
    size_t read = 0;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        contents.append(buffer, read);
    }
    const bool io_error = (std::ferror(file) != 0);
    if (file != stdin) {
        std::fclose(file);
    }
    if (io_error) {
        Fail(error, path + ": read error");
        return std::nullopt;
    }
    std::string parse_error;
    std::optional<SweepRequest> request =
        ParseSweepRequest(contents, &parse_error);
    if (!request) {
        Fail(error, path + ": " + parse_error);
    }
    return request;
}

std::string
ToJson(const SweepRequest& request)
{
    std::string json = "{\"request_version\": ";
    json += std::to_string(kRequestVersion);
    json += ", \"name\": \"";
    json += stats::JsonWriter::Escape(request.name);
    json += "\", \"reps\": ";
    json += std::to_string(request.reps);
    json += ", \"shuffle_seed\": ";
    json += std::to_string(request.shuffle_seed);
    json += ", \"cells\": [";
    for (size_t i = 0; i < request.configs.size(); ++i) {
        const core::RunConfig& config = request.configs[i];
        if (i > 0) {
            json += ", ";
        }
        json += "{\"workload\": \"";
        json += core::ToString(config.workload);
        json += "\", \"memory_mb\": ";
        json += std::to_string(config.memory_mb);
        json += ", \"dirty\": \"";
        json += policy::ToString(config.dirty);
        json += "\", \"ref\": \"";
        json += policy::ToString(config.ref);
        json += "\", \"refs\": ";
        json += std::to_string(config.refs);
        json += ", \"seed\": ";
        json += std::to_string(config.seed);
        json += ", \"intensity\": ";
        json += NumberToJson(config.intensity);
        json += ", \"page_in_us\": ";
        json += NumberToJson(config.page_in_us);
        json += '}';
    }
    json += "]}";
    return json;
}

stats::RunRecord
MakeRequestRecord(const std::string& name, const core::RunConfig& config,
                  uint32_t rep, const core::RunResult& result)
{
    // Field for field what BenchSession::MakeRecord writes — any drift
    // here breaks the reply-vs-offline byte-identity contract
    // (tests/serve_test.cc compares the two documents directly).
    stats::RunRecord record;
    record.bench = name;
    record.workload = core::ToString(config.workload);
    record.dirty_policy = ToString(config.dirty);
    record.ref_policy = ToString(config.ref);
    record.memory_mb = config.memory_mb;
    record.rep = rep;
    record.seed = config.seed;
    record.refs_issued = result.refs_issued;
    record.page_ins = result.page_ins;
    record.page_outs = result.page_outs;
    record.elapsed_seconds = result.elapsed_seconds;
    record.AddMetric("n_ds", static_cast<double>(result.frequencies.n_ds));
    record.AddMetric("n_zfod",
                     static_cast<double>(result.frequencies.n_zfod));
    record.AddMetric("n_ef", static_cast<double>(result.frequencies.n_ef));
    record.AddMetric("n_w_hit",
                     static_cast<double>(result.frequencies.n_w_hit));
    record.AddMetric("n_w_miss",
                     static_cast<double>(result.frequencies.n_w_miss));
    return record;
}

ExecuteOutcome
ExecuteSweepRequest(const SweepRequest& request, unsigned jobs,
                    const ExecuteHooks& hooks)
{
    const uint64_t total = TotalCells(request);
    ExecuteOutcome outcome;
    outcome.document.schema_version = stats::kSchemaVersion;
    outcome.document.meta.bench = request.name;
    outcome.document.meta.shard_index = 0;
    outcome.document.meta.shard_count = 1;
    outcome.document.meta.total_cells = total;

    // Execution order: the shuffled order of the randomized design,
    // reordered longest-first when cost hints exist (stable, so
    // unknown-cost cells keep their shuffled relative order behind
    // every measured one — mirrors runner::RunMatrix's scheduling).
    // Scheduling order never feeds into bytes: records are committed in
    // ascending (config, rep) order below, and every cell is seeded
    // from its identity alone.
    std::vector<runner::CellId> order = runner::MatrixOrder(
        request.configs.size(), request.reps, request.shuffle_seed);
    if (hooks.cost) {
        std::vector<double> costs(order.size());
        for (size_t i = 0; i < order.size(); ++i) {
            costs[i] = hooks.cost(request.configs[order[i].config_index],
                                  order[i].rep);
        }
        std::vector<size_t> by_cost(order.size());
        for (size_t i = 0; i < by_cost.size(); ++i) {
            by_cost[i] = i;
        }
        std::stable_sort(by_cost.begin(), by_cost.end(),
                         [&costs](size_t a, size_t b) {
                             return costs[a] > costs[b];
                         });
        std::vector<runner::CellId> sorted;
        sorted.reserve(order.size());
        for (const size_t i : by_cost) {
            sorted.push_back(order[i]);
        }
        order = std::move(sorted);
    }

    // Completion state shared with the workers; the guards are
    // machine-checked (DESIGN.md §13).  Result slots are indexed by
    // record order (config_index * reps + rep); each slot is written by
    // exactly one worker and read by the committer only after its
    // finished flag was observed under the mutex.
    struct State {
        Mutex mutex;
        CondVar changed;
        std::vector<uint8_t> finished SPUR_GUARDED_BY(mutex);
        uint64_t remaining SPUR_GUARDED_BY(mutex) = 0;
        bool cancel SPUR_GUARDED_BY(mutex) = false;
    } state;
    {
        MutexLock lock(state.mutex);
        state.finished.assign(total, 0);
        state.remaining = total;
    }
    std::vector<core::RunResult> slots(total);

    const auto run_cell = [&](runner::CellId id) {
        const size_t slot = id.config_index * request.reps + id.rep;
        bool skip;
        {
            MutexLock lock(state.mutex);
            skip = state.cancel;
        }
        if (!skip) {
            core::RunConfig config = request.configs[id.config_index];
            config.seed = runner::CellSeed(config.seed, id.rep);
            try {
                slots[slot] = core::RunOnce(config);
            } catch (...) {
                // A throwing cell cancels the request (the daemon must
                // outlive any single bad request); the reply stays a
                // truncated-but-recoverable prefix.
                MutexLock lock(state.mutex);
                state.cancel = true;
            }
        }
        {
            MutexLock lock(state.mutex);
            state.finished[slot] = 1;
            --state.remaining;
        }
        state.changed.NotifyAll();
    };

    std::optional<runner::ThreadPool> pool;
    std::function<void(std::function<void()>)> submit = hooks.submit;
    if (!submit) {
        unsigned threads = (jobs != 0) ? jobs : runner::DefaultJobs();
        threads = static_cast<unsigned>(
            std::min<uint64_t>(threads, std::max<uint64_t>(total, 1)));
        pool.emplace(threads);
        submit = [&pool](std::function<void()> task) {
            pool->Submit(std::move(task));
        };
    }
    for (const runner::CellId& id : order) {
        submit([&run_cell, id] { run_cell(id); });
    }

    // Commit in ascending (config, rep) order — the byte order of an
    // offline --json/--stream run — polling for cancellation while a
    // cell's predecessors are still in flight.
    bool cancelled = false;
    for (uint64_t k = 0; k < total && !cancelled; ++k) {
        bool ready = false;
        while (!ready && !cancelled) {
            {
                MutexLock lock(state.mutex);
                if (state.finished[k] != 0) {
                    ready = true;
                } else if (state.cancel) {
                    cancelled = true;
                } else {
                    state.changed.WaitFor(state.mutex, 50);
                    if (state.finished[k] != 0) {
                        ready = true;
                    } else if (state.cancel) {
                        cancelled = true;
                    }
                }
            }
            if (!ready && !cancelled && hooks.cancelled &&
                hooks.cancelled()) {
                MutexLock lock(state.mutex);
                state.cancel = true;
                cancelled = true;
            }
        }
        if (cancelled) {
            break;
        }
        const size_t config_index = static_cast<size_t>(k / request.reps);
        const uint32_t rep = static_cast<uint32_t>(k % request.reps);
        core::RunConfig config = request.configs[config_index];
        config.seed = runner::CellSeed(config.seed, rep);
        stats::RunRecord record =
            MakeRequestRecord(request.name, config, rep, slots[k]);
        if (hooks.commit && !hooks.commit(record)) {
            MutexLock lock(state.mutex);
            state.cancel = true;
            cancelled = true;
            break;
        }
        outcome.document.records.push_back(std::move(record));
        ++outcome.committed;
    }

    // Never return while a worker can still touch this frame: cancelled
    // cells drain as cheap no-ops, in-flight ones finish.
    {
        MutexLock lock(state.mutex);
        while (state.remaining != 0) {
            state.changed.Wait(state.mutex);
        }
    }

    outcome.completed = !cancelled && outcome.committed == total;
    outcome.document.meta.ran_cells =
        outcome.completed ? total : outcome.committed;
    return outcome;
}

}  // namespace spur::serve

/**
 * @file
 * Sweep requests: the unit of work the sweep service executes
 * (DESIGN.md §17).
 *
 * A SweepRequest names a sweep (the bench field of every record it
 * produces) and lists the matrix cells to run — the same
 * (configs × reps) shape runner::BenchSession executes behind --json.
 * The request schema is versioned (kRequestVersion) and strictly
 * parsed: unknown keys, mistyped fields and unknown policy names are
 * rejected with a reason instead of terminating the process, because
 * the daemon must survive malformed requests from any client.
 *
 * ExecuteSweepRequest is the one executor both the daemon and the
 * offline `spur_serve exec` reference path share, which is what makes a
 * served reply byte-identical to an offline --json run: same cell
 * seeding (runner::CellSeed), same shuffled execution order cost-sorted
 * longest-first, same ascending (config, rep) record commit order, and
 * the exact record field set BenchSession::MakeRecord writes.
 */
#ifndef SPUR_SERVE_REQUEST_H_
#define SPUR_SERVE_REQUEST_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/stats/run_record.h"
#include "src/sweep/merge.h"

namespace spur::serve {

/** Version of the request schema; bump on any shape change. */
inline constexpr int kRequestVersion = 1;

/** One sweep request: a named experiment matrix. */
struct SweepRequest {
    std::string name;           ///< Bench name stamped on every record.
    uint32_t reps = 1;          ///< Repetitions per config.
    uint64_t shuffle_seed = 42; ///< Execution-order shuffle seed.
    std::vector<core::RunConfig> configs;
};

/** Matrix cells the request executes (configs × reps). */
uint64_t TotalCells(const SweepRequest& request);

/**
 * Parses a request document:
 *   {"request_version": 1, "name": N, "reps": R, "shuffle_seed": S,
 *    "cells": [{"workload": W, "memory_mb": M, "dirty": D, "ref": F,
 *               "refs": B, "seed": X, "intensity": I,
 *               "page_in_us": P}, ...]}
 * reps/shuffle_seed and all cell fields except workload are optional
 * (core::RunConfig defaults).  Unknown keys, bad types, unknown policy
 * or workload names and out-of-range values are errors — never fatal.
 */
std::optional<SweepRequest> ParseSweepRequest(const std::string& json,
                                              std::string* error);

/** ParseSweepRequest over an already-parsed JSON value. */
bool ParseSweepRequestValue(const sweep::JsonValue& value,
                            SweepRequest* out, std::string* error);

/** Reads @p path ("-" = stdin) and parses it as a request. */
std::optional<SweepRequest> LoadRequestFile(const std::string& path,
                                            std::string* error);

/**
 * Canonical serialization: every field explicit, so
 * ParseSweepRequest(ToJson(r)) reproduces @p request exactly.
 */
std::string ToJson(const SweepRequest& request);

/**
 * The standard record for one executed cell — field for field what
 * runner::BenchSession::MakeRecord writes, which the reply
 * byte-identity contract depends on.  @p config carries the derived
 * per-cell seed (runner::CellSeed), exactly as BenchSession records it.
 */
stats::RunRecord MakeRequestRecord(const std::string& name,
                                   const core::RunConfig& config,
                                   uint32_t rep,
                                   const core::RunResult& result);

/** Hooks the daemon threads scheduling, output and cancellation through. */
struct ExecuteHooks {
    /// Schedules one cell task.  Unset = a private pool per call; the
    /// daemon passes the shared runner::ThreadPool's Submit so cells
    /// from every connection multiplex over one worker set.
    std::function<void(std::function<void()>)> submit;
    /// Measured-cost hint (seconds, negative = unknown) driving
    /// longest-first execution order; never affects result bytes.
    std::function<double(const core::RunConfig&, uint32_t)> cost;
    /// Fired once per cell in ascending (config, rep) order with the
    /// cell's finished record; return false to cancel the rest (the
    /// daemon returns false when the reply socket write fails).
    std::function<bool(const stats::RunRecord&)> commit;
    /// Polled between cells while the committer waits; true = cancel
    /// (the daemon polls for client disconnect here).
    std::function<bool()> cancelled;
};

/** What one execution produced. */
struct ExecuteOutcome {
    /// The request's sweep document: the committed records under the
    /// meta an offline --json run would write.  Partial on cancel
    /// (ran_cells then counts only the committed prefix).
    sweep::SweepDocument document;
    bool completed = false;  ///< Every cell ran and was committed.
    uint64_t committed = 0;  ///< Cells committed (a prefix of the matrix).
};

/**
 * Executes @p request and commits each cell's record in ascending
 * (config, rep) order.  @p jobs sizes the private pool when
 * hooks.submit is unset (0 = DefaultJobs).  On cancellation —
 * hooks.cancelled turning true, hooks.commit returning false, or a
 * cell throwing — cells not yet started are skipped (their queue slots
 * drain as no-ops) and the call still waits for every in-flight cell
 * before returning, so hooks never outlive the call.
 */
ExecuteOutcome ExecuteSweepRequest(const SweepRequest& request,
                                   unsigned jobs,
                                   const ExecuteHooks& hooks);

}  // namespace spur::serve

#endif  // SPUR_SERVE_REQUEST_H_

/**
 * @file
 * The sweep service's wire protocol, SPUR-SERVE/1 (DESIGN.md §17).
 *
 * One request per connection, over a Unix-domain stream socket.  The
 * client opens the conversation with a single request frame and the
 * server answers with either a rejection or an acceptance followed by
 * the reply stream:
 *
 *   client -> server   Q <len>\n{"proto_version": 1,
 *                                "have_records": K,
 *                                "request": {...}}\n
 *   server -> client   E <len>\n{"proto_version": 1, "error": R}\n
 *                      (rejected: reason R, connection closes)
 *   server -> client   A <len>\n{"proto_version": 1,
 *                                "total_cells": N,
 *                                "skip_records": K}\n
 *                      followed by the reply bytes
 *
 * The reply bytes after the A frame are EXACTLY a SPUR-STREAM/1 file
 * (src/sweep/stream.h): magic line, H frame, one R frame per record in
 * record order, and a digest-verified T trailer.  When K > 0 the client
 * already holds magic + header + the first K record frames from an
 * earlier torn connection, so the server skips those bytes (the trailer
 * digest still covers all records) and the client appends — resume is
 * plain concatenation, and a completed reply file recovers to the exact
 * offline --json document via the existing `spur_sweep recover` path.
 *
 * Frames reuse the stream encoding ("<tag> <len>\n<payload>\n"), so one
 * reader handles both layers.  Every payload carries proto_version and
 * is strictly parsed; anything malformed is a reject-with-reason, never
 * a daemon death.
 */
#ifndef SPUR_SERVE_PROTO_H_
#define SPUR_SERVE_PROTO_H_

#include <cstdint>
#include <string>

#include "src/serve/request.h"

namespace spur::serve {

/** Version of the request/response protocol; bump on any change. */
inline constexpr int kProtoVersion = 1;

inline constexpr char kTagRequest = 'Q';  ///< Client hello (the request).
inline constexpr char kTagAccept = 'A';   ///< Server accepted; stream follows.
inline constexpr char kTagReject = 'E';   ///< Server rejected with a reason.

/** The client's opening frame: the request plus its resume position. */
struct ClientHello {
    /// Record frames the client already holds from a torn earlier
    /// reply; the server re-executes deterministically but skips
    /// sending them.  0 = fresh request (server sends magic + header).
    uint64_t have_records = 0;
    SweepRequest request;
};

/** The server's acceptance: sizing echoed back for sanity checks. */
struct ServerAccept {
    uint64_t total_cells = 0;   ///< Cells the request executes.
    uint64_t skip_records = 0;  ///< Record frames the server will skip.
};

/** Renders the full Q frame (tag, length, payload). */
std::string EncodeHelloFrame(const ClientHello& hello);

/** Renders the full A frame. */
std::string EncodeAcceptFrame(const ServerAccept& accept);

/** Renders the full E frame. */
std::string EncodeRejectFrame(const std::string& reason);

/** Parses a Q-frame payload.  False + *error on any malformation. */
bool ParseHelloPayload(const std::string& payload, ClientHello* out,
                       std::string* error);

/** Parses an A-frame payload. */
bool ParseAcceptPayload(const std::string& payload, ServerAccept* out,
                        std::string* error);

/** Parses an E-frame payload into its reason. */
bool ParseRejectPayload(const std::string& payload, std::string* reason,
                        std::string* error);

/**
 * Monotonic milliseconds for connection deadlines.  The single
 * wall-clock site of the serve layer: deadlines are scheduling, not
 * data — they bound how long we wait for a peer and can never reach a
 * result byte.
 */
int64_t MonotonicMs();

/** send(2)s until every byte landed; EINTR-safe, SIGPIPE-suppressed. */
bool WriteAllFd(int fd, const std::string& data);

/**
 * Buffered frame reads from a socket with a per-call deadline.  Bytes
 * read past a frame stay buffered (TakeBuffered), so a caller can
 * switch from frame parsing to raw streaming without losing data.
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd)
      : fd_(fd)
    {
    }

    /**
     * Reads one "<tag> <len>\n<payload>\n" frame, waiting at most
     * @p timeout_ms.  False + *error on timeout, EOF, oversized or
     * malformed framing.
     */
    bool ReadFrame(char* tag, std::string* payload, int timeout_ms,
                   std::string* error);

    /** Hands over bytes read past the last frame. */
    std::string TakeBuffered();

  private:
    /** Waits for and reads at least one more byte before @p deadline. */
    bool FillSome(int64_t deadline_ms, std::string* error);

    int fd_;
    std::string buffer_;
};

}  // namespace spur::serve

#endif  // SPUR_SERVE_PROTO_H_

/**
 * @file
 * A fixed-size pool of worker threads draining a FIFO task queue.
 *
 * The pool is deliberately minimal: tasks are type-erased closures, the
 * queue is unbounded, and completion tracking is left to the caller
 * (see runner.h, which layers deterministic experiment orchestration on
 * top).  A task that throws is considered a caller bug at this layer;
 * Runner wraps every task so exceptions never reach the pool.
 *
 * The queue and stop flag carry thread-safety annotations
 * (src/common/thread_annotations.h): under clang -Wthread-safety,
 * touching them without holding mutex_ is a compile error.
 */
#ifndef SPUR_RUNNER_THREAD_POOL_H_
#define SPUR_RUNNER_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace spur::runner {

/** Fixed-size worker pool; tasks run in submission order, one per slot. */
class ThreadPool
{
  public:
    /** Starts @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueues @p task to run on some worker thread. */
    void Submit(std::function<void()> task);

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void WorkerLoop(unsigned worker_index);

    /** True when a worker should stop sleeping on ready_. */
    bool HasWork() const SPUR_REQUIRES(mutex_)
    {
        return stopping_ || !queue_.empty();
    }

    Mutex mutex_;
    CondVar ready_;
    std::deque<std::function<void()>> queue_ SPUR_GUARDED_BY(mutex_);
    bool stopping_ SPUR_GUARDED_BY(mutex_) = false;
    std::vector<std::thread> workers_;
};

/** Threads to use when the user does not say: hardware concurrency. */
unsigned HardwareJobs();

/**
 * Installs the process-wide default job count used when a runner entry
 * point is called with jobs = 0 (as runner::RunMatrix does).  Passing 0
 * restores the hardware default.  The bench/example harness installs the
 * --jobs flag value here so library-level callers inherit it.
 */
void SetDefaultJobs(unsigned jobs);

/** The effective default job count (never 0). */
unsigned DefaultJobs();

/**
 * 0-based index of the pool worker running the current thread, 0 on
 * any thread outside a pool.  Recorded in per-cell telemetry so the
 * JSON trajectory shows how cells spread over workers.
 */
unsigned CurrentWorkerIndex();

}  // namespace spur::runner

#endif  // SPUR_RUNNER_THREAD_POOL_H_

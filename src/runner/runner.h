/**
 * @file
 * Parallel run orchestration for the experiment matrix.
 *
 * Determinism contract (tested by tests/runner_test.cc, documented in
 * DESIGN.md): every (config, repetition) cell derives its seed from the
 * cell's identity alone (CellSeed), and every cell builds a private
 * SpurSystem inside core::RunOnce, so there is no shared mutable state
 * between runs.  Results are therefore bit-identical to the sequential
 * runner regardless of the job count or the order in which worker
 * threads finish cells.
 *
 * Progress callbacks are always invoked on the calling thread, one call
 * per completed cell, so existing single-threaded reporting code (table
 * accumulation, stderr printing) needs no locking.
 */
#ifndef SPUR_RUNNER_RUNNER_H_
#define SPUR_RUNNER_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/experiment.h"

namespace spur::runner {

/** Identity and outcome of one completed matrix cell. */
struct Cell {
    size_t config_index = 0;  ///< Index into the input config vector.
    uint32_t rep = 0;         ///< Repetition number in [0, reps).
    core::RunConfig config;   ///< The executed config (derived seed).
    core::RunResult result;
};

/** Fired once per completed cell, on the calling thread. */
using CellCallback = std::function<void(const Cell&)>;

/**
 * The per-repetition seed derivation, shared by every runner so that
 * sequential and parallel execution agree bit-for-bit.
 */
uint64_t CellSeed(uint64_t config_seed, uint32_t rep);

/**
 * Runs @p fn(i) for every i in [0, count) on up to @p jobs threads
 * (0 = DefaultJobs()).  Blocks until every index has finished.  If one
 * or more calls throw, the remaining indices still execute (the pool is
 * never abandoned mid-queue) and the first exception in index order is
 * rethrown on the calling thread.
 */
void ParallelFor(size_t count, unsigned jobs,
                 const std::function<void(size_t)>& fn);

/**
 * The parallel equivalent of the sequential experiment matrix: executes
 * every (config, rep) cell in the shuffled order of the paper's
 * randomized design, spreading cells over @p jobs worker threads
 * (0 = DefaultJobs(), 1 = run inline).  result[i][r] is repetition r of
 * configs[i], bit-identical for every job count.
 */
std::vector<std::vector<core::RunResult>> RunMatrix(
    const std::vector<core::RunConfig>& configs, uint32_t reps,
    uint64_t shuffle_seed = 42, unsigned jobs = 0,
    const CellCallback& progress = nullptr);

/**
 * Runs each config exactly once with its seed used verbatim (the
 * parallel form of a hand-rolled RunOnce loop) and returns results in
 * input order.
 */
std::vector<core::RunResult> RunAll(
    const std::vector<core::RunConfig>& configs, unsigned jobs = 0);

}  // namespace spur::runner

#endif  // SPUR_RUNNER_RUNNER_H_

/**
 * @file
 * Parallel run orchestration for the experiment matrix.
 *
 * Determinism contract (tested by tests/runner_test.cc, documented in
 * DESIGN.md): every (config, repetition) cell derives its seed from the
 * cell's identity alone (CellSeed), and every cell builds a private
 * SpurSystem inside core::RunOnce, so there is no shared mutable state
 * between runs.  Results are therefore bit-identical to the sequential
 * runner regardless of the job count or the order in which worker
 * threads finish cells.
 *
 * Progress callbacks are always invoked on the calling thread, one call
 * per completed cell, so existing single-threaded reporting code (table
 * accumulation, stderr printing) needs no locking.
 */
#ifndef SPUR_RUNNER_RUNNER_H_
#define SPUR_RUNNER_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/experiment.h"

namespace spur::runner {

/** One cell's identity in the matrix execution order. */
struct CellId {
    size_t config_index = 0;  ///< Index into the input config vector.
    uint32_t rep = 0;         ///< Repetition number in [0, reps).
};

/** Identity and outcome of one completed matrix cell. */
struct Cell {
    size_t config_index = 0;  ///< Index into the input config vector.
    uint32_t rep = 0;         ///< Repetition number in [0, reps).
    core::RunConfig config;   ///< The executed config (derived seed).
    core::RunResult result;
    /// False when MatrixOptions::skip elided the run (e.g. the cell was
    /// satisfied from a --resume file): identity and config are filled
    /// in, result and telemetry stay default.
    bool executed = true;
    // Telemetry sampled around the cell's execution (sweep layer).
    double wall_seconds = 0.0;    ///< Wall-clock duration of RunOnce.
    uint64_t peak_rss_bytes = 0;  ///< Process peak RSS at completion.
    uint32_t worker = 0;          ///< 0-based worker-thread index.
};

/** Fired once per completed cell, on the calling thread. */
using CellCallback = std::function<void(const Cell&)>;

/**
 * The per-repetition seed derivation, shared by every runner so that
 * sequential and parallel execution agree bit-for-bit.
 */
uint64_t CellSeed(uint64_t config_seed, uint32_t rep);

/**
 * The shuffled (config, rep) execution order of the paper's Section 4.2
 * randomized experiment design.  Depends only on the matrix shape and
 * @p shuffle_seed — never on the job count or sharding — so every
 * process of a distributed sweep agrees on each cell's ordinal, which
 * is what shard assignment (src/sweep/shard.h) keys on.
 */
std::vector<CellId> MatrixOrder(size_t num_configs, uint32_t reps,
                                uint64_t shuffle_seed);

/** Execution options for the sharded / cost-aware matrix runner. */
struct MatrixOptions {
    uint64_t shuffle_seed = 42;
    unsigned jobs = 0;        ///< 0 = DefaultJobs(), 1 = run inline.
    /// Run only cells whose ordinal o in the shuffled order satisfies
    /// (shard_offset + o) % shard_count == shard_index.  The offset
    /// lets a session spread consecutive RunMatrix calls evenly over
    /// shards by carrying its running cell count across calls.
    uint32_t shard_index = 0;
    uint32_t shard_count = 1;
    uint64_t shard_offset = 0;
    /// Optional measured-cost hint (seconds; negative = unknown).  When
    /// set, this shard's cells execute longest-first — better pool
    /// utilization on heterogeneous sweeps — with unknown-cost cells
    /// keeping their shuffled order after all known ones.  Scheduling
    /// order never changes results (cells are seeded by identity).
    std::function<double(const core::RunConfig& config, uint32_t rep)> cost;
    /// Optional resume hook, called once per owned cell — with the
    /// derived per-cell seed — before it is scheduled; true = do not
    /// run it.  Skipped cells still fire progress, with Cell::executed
    /// false, so callers can substitute previously recorded results.
    /// Skipping any cell disables the full-matrix dominance audit: the
    /// in-process grid is incomplete, exactly as under sharding.
    std::function<bool(const core::RunConfig& config, uint32_t rep)> skip;
};

/**
 * The sharded / cost-aware form of RunMatrix: executes the cells this
 * shard owns and leaves every other cell of the result matrix
 * default-constructed.  The union of all shards' executed cells is
 * bit-identical to a single full run (tests/sweep_test.cc).  Progress
 * fires once per *owned* cell, on the calling thread: executed cells
 * carry their result and telemetry, cells elided by MatrixOptions::skip
 * arrive with Cell::executed false.
 */
std::vector<std::vector<core::RunResult>> RunMatrix(
    const std::vector<core::RunConfig>& configs, uint32_t reps,
    const MatrixOptions& options, const CellCallback& progress = nullptr);

/**
 * Runs @p fn(i) for every i in [0, count) on up to @p jobs threads
 * (0 = DefaultJobs()).  Blocks until every index has finished.  If one
 * or more calls throw, the remaining indices still execute (the pool is
 * never abandoned mid-queue) and the first exception in index order is
 * rethrown on the calling thread.
 */
void ParallelFor(size_t count, unsigned jobs,
                 const std::function<void(size_t)>& fn);

/**
 * The parallel equivalent of the sequential experiment matrix: executes
 * every (config, rep) cell in the shuffled order of the paper's
 * randomized design, spreading cells over @p jobs worker threads
 * (0 = DefaultJobs(), 1 = run inline).  result[i][r] is repetition r of
 * configs[i], bit-identical for every job count.
 */
std::vector<std::vector<core::RunResult>> RunMatrix(
    const std::vector<core::RunConfig>& configs, uint32_t reps,
    uint64_t shuffle_seed = 42, unsigned jobs = 0,
    const CellCallback& progress = nullptr);

/**
 * Runs each config exactly once with its seed used verbatim (the
 * parallel form of a hand-rolled RunOnce loop) and returns results in
 * input order.
 */
std::vector<core::RunResult> RunAll(
    const std::vector<core::RunConfig>& configs, unsigned jobs = 0);

}  // namespace spur::runner

#endif  // SPUR_RUNNER_RUNNER_H_

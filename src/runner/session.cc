#include "src/runner/session.h"

#include <utility>

#include "src/common/log.h"
#include "src/runner/thread_pool.h"

namespace spur::runner {

BenchSession::BenchSession(std::string bench_name, const Args& args)
  : bench_(std::move(bench_name)),
    json_path_(args.GetString("json"))
{
    const int64_t requested = args.GetInt("jobs", 0);
    jobs_ = (requested > 0) ? static_cast<unsigned>(requested)
                            : HardwareJobs();
    // Library-level callers (core::RunMatrix) inherit the flag too.
    SetDefaultJobs(jobs_);
}

std::vector<std::vector<core::RunResult>>
BenchSession::RunMatrix(const std::vector<core::RunConfig>& configs,
                        uint32_t reps, uint64_t shuffle_seed)
{
    auto results = runner::RunMatrix(configs, reps, shuffle_seed, jobs_);
    // Record in (config, rep) order — not completion order — so the JSON
    // document is byte-stable across job counts.
    for (size_t i = 0; i < configs.size(); ++i) {
        for (uint32_t r = 0; r < reps; ++r) {
            core::RunConfig run = configs[i];
            run.seed = CellSeed(run.seed, r);
            Record(run, r, results[i][r]);
        }
    }
    return results;
}

std::vector<core::RunResult>
BenchSession::RunAll(const std::vector<core::RunConfig>& configs)
{
    auto results = runner::RunAll(configs, jobs_);
    for (size_t i = 0; i < configs.size(); ++i) {
        Record(configs[i], 0, results[i]);
    }
    return results;
}

void
BenchSession::Record(const core::RunConfig& config, uint32_t rep,
                     const core::RunResult& result)
{
    stats::RunRecord record;
    record.bench = bench_;
    record.workload = core::ToString(config.workload);
    record.dirty_policy = ToString(config.dirty);
    record.ref_policy = ToString(config.ref);
    record.memory_mb = config.memory_mb;
    record.rep = rep;
    record.seed = config.seed;
    record.refs_issued = result.refs_issued;
    record.page_ins = result.page_ins;
    record.page_outs = result.page_outs;
    record.elapsed_seconds = result.elapsed_seconds;
    record.AddMetric("n_ds", static_cast<double>(result.frequencies.n_ds));
    record.AddMetric("n_zfod",
                     static_cast<double>(result.frequencies.n_zfod));
    record.AddMetric("n_ef", static_cast<double>(result.frequencies.n_ef));
    record.AddMetric("n_w_hit",
                     static_cast<double>(result.frequencies.n_w_hit));
    record.AddMetric("n_w_miss",
                     static_cast<double>(result.frequencies.n_w_miss));
    records_.push_back(std::move(record));
}

void
BenchSession::Record(stats::RunRecord record)
{
    if (record.bench.empty()) {
        record.bench = bench_;
    }
    records_.push_back(std::move(record));
}

int
BenchSession::Finish()
{
    if (json_path_.empty()) {
        return 0;
    }
    if (!stats::JsonWriter::WriteFile(json_path_, bench_, records_)) {
        Warn("BenchSession: failed to write " + json_path_);
        return 1;
    }
    return 0;
}

}  // namespace spur::runner

#include "src/runner/session.h"

#include <map>
#include <utility>

#include "src/common/log.h"
#include "src/common/mutex.h"
#include "src/runner/thread_pool.h"
#include "src/sweep/merge.h"
#include "src/sweep/telemetry.h"

namespace spur::runner {

BenchSession::BenchSession(std::string bench_name, const Args& args)
  : bench_(std::move(bench_name)),
    json_path_(args.GetString("json")),
    telemetry_(args.Has("telemetry"))
{
    const int64_t requested = args.GetInt("jobs", 0);
    jobs_ = (requested > 0) ? static_cast<unsigned>(requested)
                            : HardwareJobs();
    // Library-level callers (core::RunMatrix) inherit the flag too.
    SetDefaultJobs(jobs_);

    const std::string shard_text = args.GetString("shard");
    if (!shard_text.empty()) {
        const std::optional<sweep::ShardSpec> shard =
            sweep::ShardSpec::Parse(shard_text);
        if (!shard) {
            Fatal("--shard must be K/N with 0 <= K < N, got '" +
                  shard_text + "'");
        }
        shard_ = *shard;
    }

    const std::string costs_path = args.GetString("costs");
    if (!costs_path.empty()) {
        std::string error;
        const std::optional<sweep::SweepDocument> document =
            sweep::LoadSweepFile(costs_path, &error);
        if (!document) {
            Fatal("--costs: " + error);
        }
        costs_ = sweep::CostTable::FromDocument(*document);
        if (costs_.empty()) {
            Warn("--costs: " + costs_path +
                 " holds no telemetry (produce it with --telemetry); "
                 "keeping shuffled order");
        }
    }
}

std::vector<std::vector<core::RunResult>>
BenchSession::RunMatrix(const std::vector<core::RunConfig>& configs,
                        uint32_t reps, uint64_t shuffle_seed)
{
    MatrixOptions options;
    options.shuffle_seed = shuffle_seed;
    options.jobs = jobs_;
    options.shard_index = shard_.index;
    options.shard_count = shard_.count;
    options.shard_offset = total_cells_;
    if (!costs_.empty()) {
        options.cost = [this](const core::RunConfig& config, uint32_t rep) {
            return costs_.Lookup(config, rep);
        };
    }

    // Collect the executed cells (this shard's slice, with telemetry),
    // then record them in (config, rep) order — not completion order —
    // so the JSON document is byte-stable across job counts.
    std::map<std::pair<size_t, uint32_t>, Cell> cells;
    auto results = runner::RunMatrix(
        configs, reps, options,
        [&cells](const Cell& cell) {
            cells.emplace(std::make_pair(cell.config_index, cell.rep),
                          cell);
        });
    for (size_t i = 0; i < configs.size(); ++i) {
        for (uint32_t r = 0; r < reps; ++r) {
            const auto it = cells.find({i, r});
            if (it == cells.end()) {
                continue;  // Another shard's cell.
            }
            const Cell& cell = it->second;
            Record(cell.config, r, cell.result);
            AttachTelemetry(cell.wall_seconds, cell.peak_rss_bytes,
                            cell.worker);
        }
    }
    total_cells_ += static_cast<uint64_t>(configs.size()) * reps;
    ran_cells_ += cells.size();
    return results;
}

std::vector<core::RunResult>
BenchSession::RunAll(const std::vector<core::RunConfig>& configs)
{
    std::vector<size_t> mine;
    mine.reserve(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        if (shard_.Contains(total_cells_ + i)) {
            mine.push_back(i);
        }
    }
    std::vector<core::RunResult> results(configs.size());
    struct Telemetry {
        double wall_seconds = 0.0;
        uint64_t peak_rss_bytes = 0;
        uint32_t worker = 0;
    };
    std::vector<Telemetry> telemetry(mine.size());
    ParallelFor(mine.size(), jobs_, [&](size_t slot) {
        const size_t i = mine[slot];
        const sweep::Stopwatch stopwatch;
        results[i] = core::RunOnce(configs[i]);
        telemetry[slot].wall_seconds = stopwatch.Seconds();
        telemetry[slot].peak_rss_bytes = sweep::PeakRssBytes();
        telemetry[slot].worker = CurrentWorkerIndex();
    });
    for (size_t slot = 0; slot < mine.size(); ++slot) {
        const size_t i = mine[slot];
        Record(configs[i], 0, results[i]);
        AttachTelemetry(telemetry[slot].wall_seconds,
                        telemetry[slot].peak_rss_bytes,
                        telemetry[slot].worker);
    }
    total_cells_ += configs.size();
    ran_cells_ += mine.size();
    return results;
}

void
BenchSession::Record(const core::RunConfig& config, uint32_t rep,
                     const core::RunResult& result)
{
    stats::RunRecord record;
    record.bench = bench_;
    record.workload = core::ToString(config.workload);
    record.dirty_policy = ToString(config.dirty);
    record.ref_policy = ToString(config.ref);
    record.memory_mb = config.memory_mb;
    record.rep = rep;
    record.seed = config.seed;
    record.refs_issued = result.refs_issued;
    record.page_ins = result.page_ins;
    record.page_outs = result.page_outs;
    record.elapsed_seconds = result.elapsed_seconds;
    record.AddMetric("n_ds", static_cast<double>(result.frequencies.n_ds));
    record.AddMetric("n_zfod",
                     static_cast<double>(result.frequencies.n_zfod));
    record.AddMetric("n_ef", static_cast<double>(result.frequencies.n_ef));
    record.AddMetric("n_w_hit",
                     static_cast<double>(result.frequencies.n_w_hit));
    record.AddMetric("n_w_miss",
                     static_cast<double>(result.frequencies.n_w_miss));
    Record(std::move(record));
}

void
BenchSession::Record(stats::RunRecord record)
{
    if (record.bench.empty()) {
        record.bench = bench_;
    }
    MutexLock lock(mutex_);
    records_.push_back(std::move(record));
}

std::vector<stats::RunRecord>
BenchSession::records() const
{
    MutexLock lock(mutex_);
    return records_;
}

void
BenchSession::AttachTelemetry(double wall_seconds, uint64_t peak_rss_bytes,
                              uint32_t worker)
{
    if (!telemetry_) {
        return;
    }
    stats::CellTelemetry telemetry;
    telemetry.wall_seconds = wall_seconds;
    telemetry.peak_rss_bytes = peak_rss_bytes;
    telemetry.worker = worker;
    MutexLock lock(mutex_);
    if (records_.empty()) {
        return;
    }
    records_.back().telemetry = telemetry;
}

int
BenchSession::Finish()
{
    if (json_path_.empty()) {
        return 0;
    }
    stats::DocumentMeta meta;
    meta.bench = bench_;
    meta.shard_index = shard_.index;
    meta.shard_count = shard_.count;
    meta.total_cells = total_cells_;
    meta.ran_cells = ran_cells_;
    const std::vector<stats::RunRecord> records = this->records();
    if (!stats::JsonWriter::WriteFile(json_path_, meta, records)) {
        Warn("BenchSession: failed to write " + json_path_);
        return 1;
    }
    return 0;
}

}  // namespace spur::runner

#include "src/runner/session.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/runner/thread_pool.h"
#include "src/sweep/merge.h"
#include "src/sweep/telemetry.h"

namespace spur::runner {

BenchSession::BenchSession(std::string bench_name, const Args& args)
  : bench_(std::move(bench_name)),
    json_path_(args.GetString("json")),
    telemetry_(args.Has("telemetry"))
{
    const int64_t requested = args.GetInt("jobs", 0);
    jobs_ = (requested > 0) ? static_cast<unsigned>(requested)
                            : HardwareJobs();
    // Library-level callers (runner::RunMatrix) inherit the flag too.
    SetDefaultJobs(jobs_);

    const std::string shard_text = args.GetString("shard");
    if (!shard_text.empty()) {
        const std::optional<sweep::ShardSpec> shard =
            sweep::ShardSpec::Parse(shard_text);
        if (!shard) {
            Fatal("--shard must be K/N with 0 <= K < N, got '" +
                  shard_text + "'");
        }
        shard_ = *shard;
    }

    const std::string costs_path = args.GetString("costs");
    if (!costs_path.empty()) {
        std::string error;
        const std::optional<sweep::SweepDocument> document =
            sweep::LoadSweepFile(costs_path, &error);
        if (!document) {
            Fatal("--costs: " + error);
        }
        costs_ = sweep::CostTable::FromDocument(*document);
        if (costs_.empty()) {
            Warn("--costs: " + costs_path +
                 " holds no telemetry (produce it with --telemetry); "
                 "keeping shuffled order");
        }
    }

    const std::string resume_path = args.GetString("resume");
    if (!resume_path.empty()) {
        std::string error;
        const std::optional<sweep::SweepDocument> document =
            sweep::LoadSweepFile(resume_path, &error);
        if (!document) {
            Fatal("--resume: " + error);
        }
        // A recovered stream that died before any record was framed is
        // an empty document with a blank header; resuming from it is a
        // no-op, not an error.
        if (!document->records.empty()) {
            if (document->meta.bench != bench_) {
                Fatal("--resume: " + resume_path +
                      " was produced by bench '" + document->meta.bench +
                      "', this is '" + bench_ + "'");
            }
            if (document->meta.shard_index != shard_.index ||
                document->meta.shard_count != shard_.count) {
                Fatal("--resume: " + resume_path + " is shard " +
                      std::to_string(document->meta.shard_index) + "/" +
                      std::to_string(document->meta.shard_count) +
                      ", this run is " + std::to_string(shard_.index) +
                      "/" + std::to_string(shard_.count) +
                      " (resume with the original shard flags)");
            }
            for (const stats::RunRecord& record : document->records) {
                resume_.emplace(sweep::RecordIdentity(record), record);
            }
        }
    }

    const std::string stream_path = args.GetString("stream");
    if (!stream_path.empty()) {
        std::string error;
        MutexLock lock(mutex_);
        if (!stream_.Open(stream_path, bench_, shard_.index, shard_.count,
                          &error)) {
            Fatal("--stream: " + error);
        }
    }

    const std::string record_trace = args.GetString("record-trace");
    const std::string replay_trace = args.GetString("replay-trace");
    if (!record_trace.empty() && !replay_trace.empty()) {
        Fatal("--record-trace and --replay-trace are mutually exclusive "
              "(replaying records nothing new)");
    }
    if (!record_trace.empty()) {
        trace_record_ = std::make_unique<core::TraceRecordSession>();
        std::string error;
        if (!trace_record_->Open(record_trace, &error)) {
            Fatal("--record-trace: " + error);
        }
    }
    if (!replay_trace.empty()) {
        trace_replay_ = std::make_unique<core::TraceReplaySource>();
        std::string error;
        if (!trace_replay_->Load(replay_trace, &error)) {
            Fatal("--replay-trace: " + error);
        }
    }
}

std::vector<core::RunConfig>
BenchSession::WithTraceHooks(
    const std::vector<core::RunConfig>& configs) const
{
    std::vector<core::RunConfig> hooked = configs;
    if (trace_record_ != nullptr || trace_replay_ != nullptr) {
        for (core::RunConfig& config : hooked) {
            config.trace_record = trace_record_.get();
            config.trace_replay = trace_replay_.get();
        }
    }
    return hooked;
}

std::vector<std::vector<core::RunResult>>
BenchSession::RunMatrix(const std::vector<core::RunConfig>& configs,
                        uint32_t reps, uint64_t shuffle_seed)
{
    MatrixOptions options;
    options.shuffle_seed = shuffle_seed;
    options.jobs = jobs_;
    options.shard_index = shard_.index;
    options.shard_count = shard_.count;
    options.shard_offset = total_cells_;
    if (!costs_.empty()) {
        options.cost = [this](const core::RunConfig& config, uint32_t rep) {
            return costs_.Lookup(config, rep);
        };
    }
    if (!resume_.empty()) {
        options.skip = [this](const core::RunConfig& config, uint32_t rep) {
            return resume_.find(CellIdentity(config, rep)) != resume_.end();
        };
    }

    // The owned cells in record order.  Ownership is decided on the
    // shuffled ordinal (runner::RunMatrix shards the MatrixOrder list),
    // but records are committed in ascending (config, rep) order so the
    // stream prefix — and the final JSON document — is byte-stable
    // across job counts, completion order, and resume splits.
    std::vector<std::pair<size_t, uint32_t>> owned;
    {
        const std::vector<CellId> order =
            MatrixOrder(configs.size(), reps, shuffle_seed);
        for (size_t ordinal = 0; ordinal < order.size(); ++ordinal) {
            if (shard_.Contains(options.shard_offset + ordinal)) {
                owned.emplace_back(order[ordinal].config_index,
                                   order[ordinal].rep);
            }
        }
        std::sort(owned.begin(), owned.end());
    }

    // Each completed (or resumed) cell is committed — streamed and
    // recorded — the moment every owned cell before it in record order
    // is done, so a killed run's stream holds a durable in-order prefix
    // instead of nothing until the matrix ends.  The progress callback
    // always fires on this thread, so `done`/`next` need no locking.
    std::map<std::pair<size_t, uint32_t>, Cell> done;
    size_t next = 0;
    auto results = runner::RunMatrix(
        WithTraceHooks(configs), reps, options,
        [&](const Cell& cell) {
            done.emplace(std::make_pair(cell.config_index, cell.rep),
                         cell);
            while (next < owned.size()) {
                const auto ready = done.find(owned[next]);
                if (ready == done.end()) {
                    break;
                }
                CommitCell(ready->second);
                done.erase(ready);
                ++next;
            }
        });
    if (next != owned.size()) {
        // Only reachable if the shard/order math above ever diverges
        // from runner::RunMatrix's; fail loudly over dropping records.
        Fatal("BenchSession: committed " + std::to_string(next) +
              " of " + std::to_string(owned.size()) + " owned cells");
    }
    total_cells_ += static_cast<uint64_t>(configs.size()) * reps;
    ran_cells_ += owned.size();
    return results;
}

std::vector<core::RunResult>
BenchSession::RunAll(const std::vector<core::RunConfig>& configs)
{
    std::vector<size_t> mine;
    mine.reserve(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        if (shard_.Contains(total_cells_ + i)) {
            mine.push_back(i);
        }
    }
    // Split this shard's slice into cells --resume satisfies and cells
    // to execute (RunAll uses seeds verbatim, rep 0).
    std::vector<size_t> run;
    run.reserve(mine.size());
    for (const size_t i : mine) {
        if (resume_.empty() ||
            resume_.find(CellIdentity(configs[i], 0)) == resume_.end()) {
            run.push_back(i);
        }
    }
    // slot_of[k]: position in `run` of mine[k], or npos for a cell the
    // resume document already satisfies.
    constexpr size_t npos = ~size_t{0};
    std::vector<size_t> slot_of(mine.size(), npos);
    for (size_t k = 0, slot = 0; k < mine.size(); ++k) {
        if (slot < run.size() && run[slot] == mine[k]) {
            slot_of[k] = slot++;
        }
    }

    std::vector<core::RunResult> results(configs.size());
    struct Telemetry {
        double wall_seconds = 0.0;
        uint64_t peak_rss_bytes = 0;
        uint32_t worker = 0;
    };
    std::vector<Telemetry> telemetry(run.size());

    // In-order streaming committer: a cell is committed the moment every
    // owned cell before it in input order is finished (or resumed), so a
    // killed run's stream holds a durable prefix.  Workers race to drain,
    // hence the machine-checked guard (DESIGN.md §13); commit order stays
    // the input order, so the bytes match a sequential run exactly.
    struct Drain {
        Mutex mutex;
        std::vector<bool> finished SPUR_GUARDED_BY(mutex);
        size_t next SPUR_GUARDED_BY(mutex) = 0;
    } drain;
    drain.finished.resize(run.size());
    const auto commit_ready = [&] {
        MutexLock lock(drain.mutex);
        while (drain.next < mine.size()) {
            const size_t k = drain.next;
            if (slot_of[k] != npos && !drain.finished[slot_of[k]]) {
                break;
            }
            ++drain.next;
            const size_t i = mine[k];
            if (slot_of[k] == npos) {
                Commit(resume_.find(CellIdentity(configs[i], 0))->second);
                ++resumed_cells_;
                continue;
            }
            stats::RunRecord record = MakeRecord(configs[i], 0, results[i]);
            if (telemetry_) {
                stats::CellTelemetry cell;
                cell.wall_seconds = telemetry[slot_of[k]].wall_seconds;
                cell.peak_rss_bytes = telemetry[slot_of[k]].peak_rss_bytes;
                cell.worker = telemetry[slot_of[k]].worker;
                record.telemetry = cell;
            }
            Commit(std::move(record));
        }
    };
    commit_ready();  // Leading resumed cells stream before execution.
    const std::vector<core::RunConfig> hooked = WithTraceHooks(configs);
    ParallelFor(run.size(), jobs_, [&](size_t slot) {
        const size_t i = run[slot];
        const sweep::Stopwatch stopwatch;
        results[i] = core::RunOnce(hooked[i]);
        telemetry[slot].wall_seconds = stopwatch.Seconds();
        telemetry[slot].peak_rss_bytes = sweep::PeakRssBytes();
        telemetry[slot].worker = CurrentWorkerIndex();
        {
            MutexLock lock(drain.mutex);
            drain.finished[slot] = true;
        }
        commit_ready();
    });
    total_cells_ += configs.size();
    ran_cells_ += mine.size();
    return results;
}

stats::RunRecord
BenchSession::MakeRecord(const core::RunConfig& config, uint32_t rep,
                         const core::RunResult& result) const
{
    stats::RunRecord record;
    record.bench = bench_;
    record.workload = core::ToString(config.workload);
    record.dirty_policy = ToString(config.dirty);
    record.ref_policy = ToString(config.ref);
    record.memory_mb = config.memory_mb;
    record.rep = rep;
    record.seed = config.seed;
    record.refs_issued = result.refs_issued;
    record.page_ins = result.page_ins;
    record.page_outs = result.page_outs;
    record.elapsed_seconds = result.elapsed_seconds;
    record.AddMetric("n_ds", static_cast<double>(result.frequencies.n_ds));
    record.AddMetric("n_zfod",
                     static_cast<double>(result.frequencies.n_zfod));
    record.AddMetric("n_ef", static_cast<double>(result.frequencies.n_ef));
    record.AddMetric("n_w_hit",
                     static_cast<double>(result.frequencies.n_w_hit));
    record.AddMetric("n_w_miss",
                     static_cast<double>(result.frequencies.n_w_miss));
    return record;
}

std::string
BenchSession::CellIdentity(const core::RunConfig& config,
                           uint32_t rep) const
{
    stats::RunRecord record;
    record.bench = bench_;
    record.workload = core::ToString(config.workload);
    record.dirty_policy = ToString(config.dirty);
    record.ref_policy = ToString(config.ref);
    record.memory_mb = config.memory_mb;
    record.rep = rep;
    record.seed = config.seed;
    return sweep::RecordIdentity(record);
}

void
BenchSession::Record(const core::RunConfig& config, uint32_t rep,
                     const core::RunResult& result)
{
    Commit(MakeRecord(config, rep, result));
}

void
BenchSession::Record(stats::RunRecord record)
{
    if (record.bench.empty()) {
        record.bench = bench_;
    }
    Commit(std::move(record));
}

void
BenchSession::CommitCell(const Cell& cell)
{
    if (!cell.executed) {
        // The skip hook only fires on resume-map hits, so the lookup
        // cannot miss.
        Commit(resume_.find(CellIdentity(cell.config, cell.rep))->second);
        ++resumed_cells_;
        return;
    }
    stats::RunRecord record = MakeRecord(cell.config, cell.rep,
                                         cell.result);
    if (telemetry_) {
        stats::CellTelemetry telemetry;
        telemetry.wall_seconds = cell.wall_seconds;
        telemetry.peak_rss_bytes = cell.peak_rss_bytes;
        telemetry.worker = cell.worker;
        record.telemetry = telemetry;
    }
    Commit(std::move(record));
}

void
BenchSession::Commit(stats::RunRecord record)
{
    MutexLock lock(mutex_);
    if (stream_.is_open()) {
        std::string error;
        if (!stream_.Append(record, &error)) {
            Warn("--stream: " + error);
            stream_failed_ = true;
        }
    }
    records_.push_back(std::move(record));
}

std::vector<stats::RunRecord>
BenchSession::records() const
{
    MutexLock lock(mutex_);
    return records_;
}

int
BenchSession::Finish()
{
    stats::DocumentMeta meta;
    meta.bench = bench_;
    meta.shard_index = shard_.index;
    meta.shard_count = shard_.count;
    meta.total_cells = total_cells_;
    meta.ran_cells = ran_cells_;
    int exit_code = 0;
    {
        MutexLock lock(mutex_);
        if (stream_failed_) {
            exit_code = 1;
        }
        if (stream_.is_open()) {
            std::string error;
            if (!stream_.Finish(meta, &error)) {
                Warn("--stream: " + error);
                exit_code = 1;
            }
        }
    }
    if (!json_path_.empty()) {
        const std::vector<stats::RunRecord> records = this->records();
        if (!stats::JsonWriter::WriteFile(json_path_, meta, records)) {
            Warn("BenchSession: failed to write " + json_path_);
            exit_code = 1;
        }
    }
    if (trace_record_ != nullptr) {
        std::string error;
        if (!trace_record_->Finish(&error)) {
            Warn("--record-trace: " + error);
            exit_code = 1;
        }
    }
    return exit_code;
}

}  // namespace spur::runner

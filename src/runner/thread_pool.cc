#include "src/runner/thread_pool.h"

#include <atomic>
#include <utility>

#include "src/common/mutex.h"

namespace spur::runner {

namespace {
std::atomic<unsigned> g_default_jobs{0};
thread_local unsigned t_worker_index = 0;
}  // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    ready_.NotifyAll();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::Submit(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        queue_.push_back(std::move(task));
    }
    ready_.NotifyOne();
}

void
ThreadPool::WorkerLoop(unsigned worker_index)
{
    t_worker_index = worker_index;
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!HasWork()) {
                ready_.Wait(mutex_);
            }
            if (queue_.empty()) {
                return;  // stopping_ and nothing left to drain.
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

unsigned
HardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return (n > 0) ? n : 1;
}

void
SetDefaultJobs(unsigned jobs)
{
    g_default_jobs.store(jobs, std::memory_order_relaxed);
}

unsigned
DefaultJobs()
{
    const unsigned jobs = g_default_jobs.load(std::memory_order_relaxed);
    return (jobs > 0) ? jobs : HardwareJobs();
}

unsigned
CurrentWorkerIndex()
{
    return t_worker_index;
}

}  // namespace spur::runner

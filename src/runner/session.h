/**
 * @file
 * Shared harness for the bench and example binaries' standard flags,
 * replacing the per-binary hand-rolled loops:
 *
 *   --jobs=N      worker threads for experiment runs (default: hardware
 *                 concurrency); installed process-wide so
 *                 runner::RunMatrix callers inherit it.
 *   --json=F      write every run this session observed to F as JSON
 *                 run records ("-" = stdout) for the perf trajectory.
 *   --shard=K/N   run only this process's slice of every matrix: cell
 *                 ordinal o (counted across the whole session, so
 *                 consecutive RunMatrix/RunAll calls balance) belongs
 *                 to shard K iff o % N == K.  Per-cell seeding makes
 *                 the union of the N shard outputs bit-identical to a
 *                 full run; merge the JSON with `spur_sweep merge`.
 *   --telemetry   stamp each recorded cell with wall-clock duration,
 *                 peak RSS and worker-thread index.  Off by default so
 *                 the JSON stays byte-identical across job counts,
 *                 shardings and machines.
 *   --costs=F     prior sweep JSON (produced with --telemetry) whose
 *                 measured durations drive longest-first scheduling;
 *                 changes utilization, never results.
 *   --stream=F    append every record to F as an fsync'd frame the
 *                 moment it is recorded (src/sweep/stream.h), with a
 *                 verified trailer at Finish() — so a crashed or killed
 *                 run keeps every finished cell.  Turn a trailerless
 *                 file back into a document with `spur_sweep recover`.
 *   --resume=F    sweep JSON document (a recovered stream, or an
 *                 earlier --json file) whose records satisfy matching
 *                 cells without re-running them; only the missing cells
 *                 execute, and the final output is byte-identical to an
 *                 uninterrupted run.  F must come from the same bench
 *                 with the same shard flags (same precedent as shards:
 *                 the sweep shape is part of the contract).
 *   --record-trace=F
 *                 capture each distinct workload stream this session
 *                 generates into F as a SPUR-TRACE/1 library
 *                 (src/workload/trace.h): the first cell per stream
 *                 identity records, every other cell runs plain.  The
 *                 file is fsync'd per stream, so a killed run leaves a
 *                 recoverable prefix (`spur_trace validate`).
 *   --replay-trace=F
 *                 drive every cell from the recorded op streams in F
 *                 instead of the live generators; results — and the
 *                 --json/--stream bytes — are byte-identical to a live
 *                 run at any --jobs.  A cell whose stream is missing
 *                 from F is a Fatal error, never a silent live run.
 *
 * Usage:
 *   const Args args(argc, argv);
 *   runner::BenchSession session("table_4_1_refbits", args);
 *   const auto results = session.RunMatrix(configs, reps);
 *   ... print tables ...
 *   return session.Finish();
 */
#ifndef SPUR_RUNNER_SESSION_H_
#define SPUR_RUNNER_SESSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <memory>

#include "src/common/args.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/experiment.h"
#include "src/core/run_trace.h"
#include "src/runner/runner.h"
#include "src/stats/run_record.h"
#include "src/sweep/cost.h"
#include "src/sweep/shard.h"
#include "src/sweep/stream.h"

namespace spur::runner {

/** Per-binary session: parses the standard flags, collects run records. */
class BenchSession
{
  public:
    /**
     * Reads the standard flags from @p args and installs the job count
     * as the process-wide default (SetDefaultJobs).  A malformed
     * --shard, an unreadable --costs/--resume file, a --resume file
     * from a different bench or sharding, or an unwritable --stream
     * path is a Fatal() user error.
     */
    BenchSession(std::string bench_name, const Args& args);

    /** The effective worker count for this session (never 0). */
    unsigned jobs() const { return jobs_; }

    /** The slice of the sweep this process runs (0/1 = everything). */
    const sweep::ShardSpec& shard() const { return shard_; }

    /** True when --telemetry was requested. */
    bool telemetry_enabled() const { return telemetry_; }

    /** Sharded work units seen (cells of every matrix so far). */
    uint64_t total_cells() const { return total_cells_; }

    /** Sharded work units this process executed or resumed. */
    uint64_t ran_cells() const { return ran_cells_; }

    /** Of ran_cells(), how many --resume satisfied without re-running. */
    uint64_t resumed_cells() const { return resumed_cells_; }

    /**
     * Parallel experiment matrix (see runner::RunMatrix) on this
     * session's job count, shard, cost table and resume set; every cell
     * this shard executes or resumes is recorded for --json/--stream in
     * deterministic (config, rep) order.  Under --shard or --resume,
     * cells not run in-process stay default-constructed in the returned
     * matrix — printed tables are partial; the JSON records are the
     * artifact those modes exist for.
     */
    std::vector<std::vector<core::RunResult>> RunMatrix(
        const std::vector<core::RunConfig>& configs, uint32_t reps,
        uint64_t shuffle_seed = 42);

    /**
     * Runs each config exactly once (seed verbatim) in parallel and
     * returns results in input order; this shard's runs are recorded.
     * Sharding treats the input order as the work-unit order, and
     * --resume satisfies matching cells here too.
     */
    std::vector<core::RunResult> RunAll(
        const std::vector<core::RunConfig>& configs);

    /**
     * Records one standard run observation.  Thread-safe: bespoke
     * benches may record from parallel loops (the record sink is
     * guarded by an annotated mutex, DESIGN.md §13), though recording
     * order — and therefore --json/--stream byte order — is
     * deterministic only when records are appended from one thread, as
     * RunMatrix/RunAll do.
     */
    void Record(const core::RunConfig& config, uint32_t rep,
                const core::RunResult& result) SPUR_EXCLUDES(mutex_);

    /** Records a bespoke observation (benches with custom run loops). */
    void Record(stats::RunRecord record) SPUR_EXCLUDES(mutex_);

    /** Snapshot of the collected records, in recording order. */
    std::vector<stats::RunRecord> records() const SPUR_EXCLUDES(mutex_);

    /**
     * Writes the --json file if one was requested and finishes the
     * --stream trailer if one is open, both stamped with the schema
     * version and this session's shard header.  Returns the process
     * exit code (non-zero if any write failed, including a record
     * frame that failed to append mid-run).
     */
    int Finish() SPUR_EXCLUDES(mutex_);

  private:
    /** Builds the standard record for one executed cell. */
    stats::RunRecord MakeRecord(const core::RunConfig& config, uint32_t rep,
                                const core::RunResult& result) const;

    /** Copies @p configs with this session's trace record/replay hooks
     *  injected (no-op copies when neither flag was given). */
    std::vector<core::RunConfig> WithTraceHooks(
        const std::vector<core::RunConfig>& configs) const;

    /** The cell identity key --resume matches records by. */
    std::string CellIdentity(const core::RunConfig& config,
                             uint32_t rep) const;

    /**
     * Commits one matrix cell: the resumed record for a skipped cell,
     * or a fresh record (plus telemetry when enabled) for an executed
     * one.  Called in ascending (config, rep) order as each ordered
     * prefix completes, so --stream gains a durable record the moment a
     * cell's predecessors are all done.
     */
    void CommitCell(const Cell& cell) SPUR_EXCLUDES(mutex_);

    /** The record sink: buffers for --json, appends to --stream. */
    void Commit(stats::RunRecord record) SPUR_EXCLUDES(mutex_);

    std::string bench_;
    std::string json_path_;
    unsigned jobs_;
    sweep::ShardSpec shard_;
    bool telemetry_ = false;
    sweep::CostTable costs_;
    // Session-thread state: mutated on the owning thread between runs
    // (sharding carries offsets across calls).  resumed_cells_ is also
    // bumped from RunAll's in-order committer, serialized by its local
    // drain mutex and read only after the parallel region joins.
    uint64_t total_cells_ = 0;
    uint64_t ran_cells_ = 0;
    uint64_t resumed_cells_ = 0;
    /// --resume records keyed by cell identity.  std::map, not
    /// unordered: resumed records feed the output byte stream.
    std::map<std::string, stats::RunRecord> resume_;
    /// --record-trace / --replay-trace state; null when not requested.
    /// Pointers to these are injected into every RunConfig the session
    /// executes (core::RunConfig::trace_record / trace_replay).
    std::unique_ptr<core::TraceRecordSession> trace_record_;
    std::unique_ptr<core::TraceReplaySource> trace_replay_;
    // The record sink is shared with whatever thread calls Record();
    // the guard is machine-checked (src/common/thread_annotations.h).
    mutable Mutex mutex_;
    std::vector<stats::RunRecord> records_ SPUR_GUARDED_BY(mutex_);
    sweep::StreamWriter stream_ SPUR_GUARDED_BY(mutex_);
    bool stream_failed_ SPUR_GUARDED_BY(mutex_) = false;
};

}  // namespace spur::runner

#endif  // SPUR_RUNNER_SESSION_H_

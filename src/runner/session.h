/**
 * @file
 * Shared harness for the bench and example binaries' standard flags,
 * replacing the per-binary hand-rolled loops:
 *
 *   --jobs=N   worker threads for experiment runs (default: hardware
 *              concurrency); installed process-wide so core::RunMatrix
 *              callers inherit it.
 *   --json=F   write every run this session observed to F as JSON run
 *              records ("-" = stdout) for the perf trajectory.
 *
 * Usage:
 *   const Args args(argc, argv);
 *   runner::BenchSession session("table_4_1_refbits", args);
 *   const auto results = session.RunMatrix(configs, reps);
 *   ... print tables ...
 *   return session.Finish();
 */
#ifndef SPUR_RUNNER_SESSION_H_
#define SPUR_RUNNER_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/core/experiment.h"
#include "src/runner/runner.h"
#include "src/stats/run_record.h"

namespace spur::runner {

/** Per-binary session: parses the standard flags, collects run records. */
class BenchSession
{
  public:
    /**
     * Reads --jobs/--json from @p args and installs the job count as the
     * process-wide default (SetDefaultJobs).
     */
    BenchSession(std::string bench_name, const Args& args);

    /** The effective worker count for this session (never 0). */
    unsigned jobs() const { return jobs_; }

    /**
     * Parallel experiment matrix (see runner::RunMatrix) on this
     * session's job count; every cell is recorded for --json in
     * deterministic (config, rep) order.
     */
    std::vector<std::vector<core::RunResult>> RunMatrix(
        const std::vector<core::RunConfig>& configs, uint32_t reps,
        uint64_t shuffle_seed = 42);

    /**
     * Runs each config exactly once (seed verbatim) in parallel and
     * returns results in input order; every run is recorded.
     */
    std::vector<core::RunResult> RunAll(
        const std::vector<core::RunConfig>& configs);

    /** Records one standard run observation. */
    void Record(const core::RunConfig& config, uint32_t rep,
                const core::RunResult& result);

    /** Records a bespoke observation (benches with custom run loops). */
    void Record(stats::RunRecord record);

    /** Collected records, in recording order. */
    const std::vector<stats::RunRecord>& records() const
    {
        return records_;
    }

    /**
     * Writes the --json file if one was requested.  Returns the
     * process exit code (non-zero if the write failed).
     */
    int Finish();

  private:
    std::string bench_;
    std::string json_path_;
    unsigned jobs_;
    std::vector<stats::RunRecord> records_;
};

}  // namespace spur::runner

#endif  // SPUR_RUNNER_SESSION_H_

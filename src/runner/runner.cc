#include "src/runner/runner.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

#include "src/check/audit.h"
#include "src/check/dominance.h"
#include "src/common/random.h"
#include "src/runner/thread_pool.h"

namespace spur::runner {

namespace {

/** Resolves a user-facing job count (0 = default) against the work size. */
unsigned
EffectiveJobs(unsigned jobs, size_t count)
{
    if (jobs == 0) {
        jobs = DefaultJobs();
    }
    return static_cast<unsigned>(
        std::min<size_t>(jobs, std::max<size_t>(count, 1)));
}

/** One cell's identity in the shuffled execution order. */
struct CellId {
    size_t config_index;
    uint32_t rep;
};

/**
 * The shuffled (config, rep) list of the paper's Section 4.2 randomized
 * experiment design.  The shuffle depends only on @p shuffle_seed and
 * the matrix shape, never on the job count.
 */
std::vector<CellId>
ShuffledCells(size_t num_configs, uint32_t reps, uint64_t shuffle_seed)
{
    std::vector<CellId> cells;
    cells.reserve(num_configs * reps);
    for (size_t i = 0; i < num_configs; ++i) {
        for (uint32_t r = 0; r < reps; ++r) {
            cells.push_back(CellId{i, r});
        }
    }
    Rng rng(shuffle_seed);
    for (size_t i = cells.size(); i > 1; --i) {
        std::swap(cells[i - 1], cells[rng.NextBelow(i)]);
    }
    return cells;
}

/**
 * Post-matrix audit (audit builds only): once every cell of the grid has
 * finished, the cross-policy dominance invariants are checkable — MIN is
 * a lower bound on dirty faults, reference bits never increase page-ins.
 */
void
AuditMatrix(const std::vector<core::RunConfig>& configs,
            const std::vector<std::vector<core::RunResult>>& results)
{
    if constexpr (check::kAuditEnabled) {
        check::AuditDominance(configs, results)
            .RaiseIfFailed("runner::RunMatrix (post-matrix)");
    } else {
        (void)configs;
        (void)results;
    }
}

}  // namespace

uint64_t
CellSeed(uint64_t config_seed, uint32_t rep)
{
    // Distinct, reproducible seed per repetition; must never change, or
    // every recorded result in the perf trajectory shifts.
    return config_seed * 1000003 + rep * 7919 + 17;
}

void
ParallelFor(size_t count, unsigned jobs,
            const std::function<void(size_t)>& fn)
{
    if (count == 0) {
        return;
    }
    jobs = EffectiveJobs(jobs, count);
    std::vector<std::exception_ptr> errors(count);
    if (jobs <= 1) {
        for (size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        std::mutex mutex;
        std::condition_variable finished_cv;
        size_t finished = 0;
        ThreadPool pool(jobs);
        for (size_t i = 0; i < count; ++i) {
            pool.Submit([&, i] {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    ++finished;
                }
                finished_cv.notify_one();
            });
        }
        std::unique_lock<std::mutex> lock(mutex);
        finished_cv.wait(lock, [&] { return finished == count; });
    }
    for (const std::exception_ptr& error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

std::vector<std::vector<core::RunResult>>
RunMatrix(const std::vector<core::RunConfig>& configs, uint32_t reps,
          uint64_t shuffle_seed, unsigned jobs, const CellCallback& progress)
{
    const std::vector<CellId> cells =
        ShuffledCells(configs.size(), reps, shuffle_seed);
    std::vector<std::vector<core::RunResult>> results(configs.size());
    for (auto& group : results) {
        group.resize(reps);
    }

    jobs = EffectiveJobs(jobs, cells.size());
    if (jobs <= 1) {
        for (const CellId& id : cells) {
            Cell cell;
            cell.config_index = id.config_index;
            cell.rep = id.rep;
            cell.config = configs[id.config_index];
            cell.config.seed = CellSeed(cell.config.seed, id.rep);
            cell.result = core::RunOnce(cell.config);
            if (progress) {
                progress(cell);
            }
            results[id.config_index][id.rep] = std::move(cell.result);
        }
        AuditMatrix(configs, results);
        return results;
    }

    // Workers execute cells and hand them back over a completion queue;
    // the calling thread drains it, firing progress callbacks here so
    // callers never need their own locking.
    struct Done {
        Cell cell;
        std::exception_ptr error;
    };
    std::mutex mutex;
    std::condition_variable done_cv;
    std::deque<Done> done;

    ThreadPool pool(jobs);
    for (const CellId& id : cells) {
        pool.Submit([&, id] {
            Done d;
            d.cell.config_index = id.config_index;
            d.cell.rep = id.rep;
            d.cell.config = configs[id.config_index];
            d.cell.config.seed = CellSeed(d.cell.config.seed, id.rep);
            try {
                d.cell.result = core::RunOnce(d.cell.config);
            } catch (...) {
                d.error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                done.push_back(std::move(d));
            }
            done_cv.notify_one();
        });
    }

    // Deterministic error choice: the failed cell with the lowest
    // (config_index, rep), independent of completion order.
    std::exception_ptr first_error;
    std::pair<size_t, uint32_t> first_error_cell{~size_t{0}, 0};
    for (size_t drained = 0; drained < cells.size(); ++drained) {
        Done d;
        {
            std::unique_lock<std::mutex> lock(mutex);
            done_cv.wait(lock, [&] { return !done.empty(); });
            d = std::move(done.front());
            done.pop_front();
        }
        if (d.error) {
            const std::pair<size_t, uint32_t> at{d.cell.config_index,
                                                 d.cell.rep};
            if (!first_error || at < first_error_cell) {
                first_error = d.error;
                first_error_cell = at;
            }
            continue;
        }
        if (progress) {
            progress(d.cell);
        }
        results[d.cell.config_index][d.cell.rep] = std::move(d.cell.result);
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
    AuditMatrix(configs, results);
    return results;
}

std::vector<core::RunResult>
RunAll(const std::vector<core::RunConfig>& configs, unsigned jobs)
{
    std::vector<core::RunResult> results(configs.size());
    ParallelFor(configs.size(), jobs,
                [&](size_t i) { results[i] = core::RunOnce(configs[i]); });
    return results;
}

}  // namespace spur::runner

#include "src/runner/runner.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <utility>

#include "src/check/audit.h"
#include "src/audit/dominance.h"
#include "src/common/log.h"
#include "src/common/mutex.h"
#include "src/common/random.h"
#include "src/common/thread_annotations.h"
#include "src/runner/thread_pool.h"
#include "src/sweep/telemetry.h"

namespace spur::runner {

namespace {

/** Resolves a user-facing job count (0 = default) against the work size. */
unsigned
EffectiveJobs(unsigned jobs, size_t count)
{
    if (jobs == 0) {
        jobs = DefaultJobs();
    }
    return static_cast<unsigned>(
        std::min<size_t>(jobs, std::max<size_t>(count, 1)));
}

/**
 * The cells this shard owns, in execution order: the shuffled list
 * filtered to the shard and, when a cost table is supplied, reordered
 * longest-first (stable, so unknown-cost cells keep their shuffled
 * relative order behind every measured one).
 */
std::vector<CellId>
ShardCells(const std::vector<core::RunConfig>& configs, uint32_t reps,
           const MatrixOptions& options)
{
    const uint32_t shard_count = std::max(options.shard_count, 1u);
    if (options.shard_index >= shard_count) {
        Fatal("RunMatrix: shard index " +
              std::to_string(options.shard_index) +
              " out of range for count " + std::to_string(shard_count));
    }
    std::vector<CellId> cells =
        MatrixOrder(configs.size(), reps, options.shuffle_seed);
    if (shard_count > 1) {
        std::vector<CellId> mine;
        mine.reserve(cells.size() / shard_count + 1);
        for (size_t ordinal = 0; ordinal < cells.size(); ++ordinal) {
            if ((options.shard_offset + ordinal) % shard_count ==
                options.shard_index) {
                mine.push_back(cells[ordinal]);
            }
        }
        cells = std::move(mine);
    }
    if (options.cost) {
        std::vector<double> costs(cells.size());
        for (size_t i = 0; i < cells.size(); ++i) {
            costs[i] = options.cost(configs[cells[i].config_index],
                                    cells[i].rep);
        }
        std::vector<size_t> order(cells.size());
        for (size_t i = 0; i < order.size(); ++i) {
            order[i] = i;
        }
        std::stable_sort(order.begin(), order.end(),
                         [&costs](size_t a, size_t b) {
                             return costs[a] > costs[b];
                         });
        std::vector<CellId> sorted;
        sorted.reserve(cells.size());
        for (const size_t i : order) {
            sorted.push_back(cells[i]);
        }
        cells = std::move(sorted);
    }
    return cells;
}

/**
 * Post-matrix audit (audit builds only): once every cell of the grid has
 * finished, the cross-policy dominance invariants are checkable — MIN is
 * a lower bound on dirty faults, reference bits never increase page-ins.
 */
void
AuditMatrix(const std::vector<core::RunConfig>& configs,
            const std::vector<std::vector<core::RunResult>>& results)
{
    if constexpr (check::kAuditEnabled) {
        audit::AuditDominance(configs, results)
            .RaiseIfFailed("runner::RunMatrix (post-matrix)");
    } else {
        (void)configs;
        (void)results;
    }
}

}  // namespace

uint64_t
CellSeed(uint64_t config_seed, uint32_t rep)
{
    // Distinct, reproducible seed per repetition; must never change, or
    // every recorded result in the perf trajectory shifts.
    return config_seed * 1000003 + rep * 7919 + 17;
}

std::vector<CellId>
MatrixOrder(size_t num_configs, uint32_t reps, uint64_t shuffle_seed)
{
    std::vector<CellId> cells;
    cells.reserve(num_configs * reps);
    for (size_t i = 0; i < num_configs; ++i) {
        for (uint32_t r = 0; r < reps; ++r) {
            cells.push_back(CellId{i, r});
        }
    }
    Rng rng(shuffle_seed);
    for (size_t i = cells.size(); i > 1; --i) {
        std::swap(cells[i - 1], cells[rng.NextBelow(i)]);
    }
    return cells;
}

void
ParallelFor(size_t count, unsigned jobs,
            const std::function<void(size_t)>& fn)
{
    if (count == 0) {
        return;
    }
    jobs = EffectiveJobs(jobs, count);
    std::vector<std::exception_ptr> errors(count);
    if (jobs <= 1) {
        for (size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        // Completion gate shared with the workers; the counter's guard
        // is machine-checked via the annotation (DESIGN.md §13).
        struct Gate {
            Mutex mutex;
            CondVar all_done;
            size_t finished SPUR_GUARDED_BY(mutex) = 0;
        } gate;
        ThreadPool pool(jobs);
        for (size_t i = 0; i < count; ++i) {
            pool.Submit([&, i] {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                {
                    MutexLock lock(gate.mutex);
                    ++gate.finished;
                }
                gate.all_done.NotifyOne();
            });
        }
        {
            MutexLock lock(gate.mutex);
            while (gate.finished != count) {
                gate.all_done.Wait(gate.mutex);
            }
        }
    }
    for (const std::exception_ptr& error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

std::vector<std::vector<core::RunResult>>
RunMatrix(const std::vector<core::RunConfig>& configs, uint32_t reps,
          const MatrixOptions& options, const CellCallback& progress)
{
    std::vector<CellId> cells = ShardCells(configs, reps, options);
    // The resume hook filters owned cells before any scheduling; skipped
    // cells surface through progress so the caller can substitute their
    // previously recorded results.
    bool any_skipped = false;
    if (options.skip) {
        std::vector<CellId> to_run;
        to_run.reserve(cells.size());
        for (const CellId& id : cells) {
            Cell cell;
            cell.config_index = id.config_index;
            cell.rep = id.rep;
            cell.config = configs[id.config_index];
            cell.config.seed = CellSeed(cell.config.seed, id.rep);
            if (options.skip(cell.config, id.rep)) {
                any_skipped = true;
                cell.executed = false;
                if (progress) {
                    progress(cell);
                }
            } else {
                to_run.push_back(id);
            }
        }
        cells = std::move(to_run);
    }
    // The cross-policy dominance audit needs the complete grid; a shard
    // holds only its slice and a resumed run skips cells, so the audit
    // runs on full in-process runs alone (the shard-union CI job still
    // covers sharded sweeps end to end).
    const bool full_matrix = options.shard_count <= 1 && !any_skipped;
    std::vector<std::vector<core::RunResult>> results(configs.size());
    for (auto& group : results) {
        group.resize(reps);
    }

    const unsigned jobs = EffectiveJobs(options.jobs, cells.size());
    if (jobs <= 1) {
        for (const CellId& id : cells) {
            Cell cell;
            cell.config_index = id.config_index;
            cell.rep = id.rep;
            cell.config = configs[id.config_index];
            cell.config.seed = CellSeed(cell.config.seed, id.rep);
            const sweep::Stopwatch stopwatch;
            cell.result = core::RunOnce(cell.config);
            cell.wall_seconds = stopwatch.Seconds();
            cell.peak_rss_bytes = sweep::PeakRssBytes();
            cell.worker = CurrentWorkerIndex();
            results[id.config_index][id.rep] = cell.result;
            if (progress) {
                progress(cell);
            }
        }
        if (full_matrix) {
            AuditMatrix(configs, results);
        }
        return results;
    }

    // Workers execute cells and hand them back over a completion queue;
    // the calling thread drains it, firing progress callbacks here so
    // callers never need their own locking.
    struct Done {
        Cell cell;
        std::exception_ptr error;
    };
    // Completion queue shared with the workers; the deque's guard is
    // machine-checked via the annotation (DESIGN.md §13).
    struct DoneQueue {
        Mutex mutex;
        CondVar ready;
        std::deque<Done> cells SPUR_GUARDED_BY(mutex);
    } completed;

    ThreadPool pool(jobs);
    for (const CellId& id : cells) {
        pool.Submit([&, id] {
            Done d;
            d.cell.config_index = id.config_index;
            d.cell.rep = id.rep;
            d.cell.config = configs[id.config_index];
            d.cell.config.seed = CellSeed(d.cell.config.seed, id.rep);
            try {
                const sweep::Stopwatch stopwatch;
                d.cell.result = core::RunOnce(d.cell.config);
                d.cell.wall_seconds = stopwatch.Seconds();
                d.cell.peak_rss_bytes = sweep::PeakRssBytes();
                d.cell.worker = CurrentWorkerIndex();
            } catch (...) {
                d.error = std::current_exception();
            }
            {
                MutexLock lock(completed.mutex);
                completed.cells.push_back(std::move(d));
            }
            completed.ready.NotifyOne();
        });
    }

    // Deterministic error choice: the failed cell with the lowest
    // (config_index, rep), independent of completion order.
    std::exception_ptr first_error;
    std::pair<size_t, uint32_t> first_error_cell{~size_t{0}, 0};
    for (size_t drained = 0; drained < cells.size(); ++drained) {
        Done d;
        {
            MutexLock lock(completed.mutex);
            while (completed.cells.empty()) {
                completed.ready.Wait(completed.mutex);
            }
            d = std::move(completed.cells.front());
            completed.cells.pop_front();
        }
        if (d.error) {
            const std::pair<size_t, uint32_t> at{d.cell.config_index,
                                                 d.cell.rep};
            if (!first_error || at < first_error_cell) {
                first_error = d.error;
                first_error_cell = at;
            }
            continue;
        }
        if (progress) {
            progress(d.cell);
        }
        results[d.cell.config_index][d.cell.rep] = std::move(d.cell.result);
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
    if (full_matrix) {
        AuditMatrix(configs, results);
    }
    return results;
}

std::vector<std::vector<core::RunResult>>
RunMatrix(const std::vector<core::RunConfig>& configs, uint32_t reps,
          uint64_t shuffle_seed, unsigned jobs, const CellCallback& progress)
{
    MatrixOptions options;
    options.shuffle_seed = shuffle_seed;
    options.jobs = jobs;
    return RunMatrix(configs, reps, options, progress);
}

std::vector<core::RunResult>
RunAll(const std::vector<core::RunConfig>& configs, unsigned jobs)
{
    std::vector<core::RunResult> results(configs.size());
    ParallelFor(configs.size(), jobs,
                [&](size_t i) { results[i] = core::RunOnce(configs[i]); });
    return results;
}

}  // namespace spur::runner

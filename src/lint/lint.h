/**
 * @file
 * spur_lint — source-wide enforcement of the project's determinism
 * rules (DESIGN.md §13).
 *
 * The repo's core contract is that every output byte is a pure function
 * of the configuration and seed: shard unions must byte-match full runs
 * (DESIGN.md §12) and parallel runs must byte-match sequential ones
 * (§9).  The rules here reject the constructs that historically break
 * that contract — wall-clock reads, platform RNGs, locale-dependent
 * formatting, iteration over unordered containers in output-feeding
 * code — plus two structural rules (a single schema_version definition
 * site, benches recording through BenchSession).
 *
 * Rules are table-driven (see kTokenRules in lint.cc), violations carry
 * file:line, and any finding can be suppressed at the site with a
 * justification comment on the same or the preceding line:
 *
 *     legacy_call();  // spur-lint: allow(no-wallclock) — measures only
 *
 * The tools/spur_lint CLI drives this library from explicit paths,
 * directory trees and/or a compile_commands.json file list, and exits
 * nonzero on violations so CI can gate on it.  tests/lint_test.cc runs
 * every rule against seeded fixture files and asserts the real tree is
 * clean.
 */
#ifndef SPUR_LINT_LINT_H_
#define SPUR_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace spur::lint {

/** One rule violation at a source location. */
struct Violation {
    std::string file;   ///< Repo-relative path (see NormalizePath).
    size_t line = 0;    ///< 1-based line; 0 = file/tree-level finding.
    std::string rule;   ///< Rule name, e.g. "no-rand".
    std::string message;
};

/** Name and one-line summary of one rule (for --list-rules). */
struct RuleInfo {
    std::string name;
    std::string summary;
};

/** Every rule, in evaluation order. */
std::vector<RuleInfo> Rules();

/**
 * Normalizes an on-disk path to its repo-relative form by keeping
 * everything from the last path component that starts one of the
 * project's top-level source dirs (src/, tools/, bench/, examples/,
 * tests/).  Absolute build-tree paths (compile_commands.json entries)
 * and fixture paths like tests/lint_fixtures/bench/x.cc thus map onto
 * the path space the rule whitelists are written against.
 */
std::string NormalizePath(const std::string& path);

/** Collects source files, then runs every rule over the set. */
class Linter
{
  public:
    /** Registers @p content as the file @p path (normalized). */
    void AddFile(const std::string& path, std::string content);

    /** Reads @p path from disk.  False + *error on I/O failure. */
    bool AddFileFromDisk(const std::string& path, std::string* error);

    /**
     * Recursively adds every *.h / *.cc under @p dir, in sorted order.
     * Skips hidden directories, build trees (build*) and the seeded
     * violation corpus (lint_fixtures); those fixtures are linted by
     * passing them as explicit files.  False + *error if @p dir is not
     * a readable directory.
     */
    bool AddTree(const std::string& dir, std::string* error);

    /**
     * Adds every "file" entry of a compile_commands.json document
     * (CMAKE_EXPORT_COMPILE_COMMANDS=ON).  Entries already registered
     * — e.g. via AddTree — are skipped.  False + *error on parse or
     * I/O failure.
     */
    bool AddCompileCommands(const std::string& path, std::string* error);

    /** Number of registered files. */
    size_t file_count() const { return files_.size(); }

    /** Runs every rule; violations sorted by (file, line, rule). */
    std::vector<Violation> Run() const;

  private:
    struct SourceFile {
        std::string path;  ///< Normalized.
        std::string content;
    };

    bool AlreadyAdded(const std::string& normalized) const;

    std::vector<SourceFile> files_;
};

/** Renders @p violation as "file:line: [rule] message". */
std::string FormatViolation(const Violation& violation);

}  // namespace spur::lint

#endif  // SPUR_LINT_LINT_H_

/**
 * @file
 * spur_lint — whole-tree enforcement of the project's determinism and
 * architecture rules (DESIGN.md §13, §18).
 *
 * The repo's core contract is that every output byte is a pure function
 * of the configuration and seed: shard unions must byte-match full runs
 * (DESIGN.md §12) and parallel runs must byte-match sequential ones
 * (§9).  The per-file rules here reject the constructs that
 * historically break that contract — wall-clock reads, platform RNGs,
 * locale-dependent formatting, iteration over unordered containers in
 * output-feeding code — plus structural rules (a single schema_version
 * definition site, benches recording through BenchSession).
 *
 * On top of the per-file scan sit four cross-file semantic passes built
 * on a shared token/scope model (cxx_scan.h):
 *
 *   layering           include reach vs the LAYERS.toml manifest, with
 *                      shortest witnessing chains (include_graph.h)
 *   lock-order         static deadlock detection over the global
 *                      lock-acquisition graph (lock_order.h)
 *   exhaustive-switch  a defaultless switch over a scoped enum must
 *                      name every enumerator, even in headers and
 *                      dead configurations the compiler never sees
 *   dead-allow /       suppression hygiene: every allow() marker must
 *   allow-budget       suppress something, and each rule has a
 *                      tree-wide budget of suppression sites
 *
 * Any line-anchored finding can be suppressed at the site with a
 * justification comment on the same or the preceding line:
 *
 *     legacy_call();  // spur-lint: allow(no-wallclock) — measures only
 *
 * The tools/spur_lint CLI (check | graph | allows subcommands) drives
 * this library from explicit paths, directory trees and/or a
 * compile_commands.json file list, and exits nonzero on violations so
 * CI can gate on it.  tests/lint_test.cc runs every rule against
 * seeded fixture files and asserts the real tree is clean.
 */
#ifndef SPUR_LINT_LINT_H_
#define SPUR_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace spur::lint {

/** One rule violation at a source location. */
struct Violation {
    std::string file;   ///< Repo-relative path (see NormalizePath).
    size_t line = 0;    ///< 1-based line; 0 = file/tree-level finding.
    std::string rule;   ///< Rule name, e.g. "no-rand".
    std::string message;
};

/** Name and one-line summary of one rule (for --list-rules). */
struct RuleInfo {
    std::string name;
    std::string summary;
};

/**
 * Every rule, in evaluation order — the single source the CLI help,
 * the DESIGN.md rule table (--list-rules --markdown) and the fixture
 * coverage test all render from.
 */
std::vector<RuleInfo> Rules();

/**
 * The tree-wide suppression budget of @p rule: how many live
 * spur-lint: allow(rule) sites the tree may carry before each further
 * site becomes an allow-budget violation.  A budget keeps suppression
 * the exception: when legitimate sites accumulate, the rule's
 * whitelist is wrong and should be widened instead.
 */
size_t RuleBudget(const std::string& rule);

/** One spur-lint: allow(...) marker found in the tree. */
struct AllowSite {
    std::string file;  ///< Normalized path.
    size_t line = 0;   ///< 1-based line of the marker.
    std::string rule;  ///< The rule named inside allow(...).
    bool used = false; ///< True once the marker suppressed a finding.
};

/**
 * Normalizes an on-disk path to its repo-relative form by keeping
 * everything from the last path component that starts one of the
 * project's top-level source dirs (src/, tools/, bench/, examples/,
 * tests/).  Absolute build-tree paths (compile_commands.json entries)
 * and fixture paths like tests/lint_fixtures/src/cache/x.cc thus map
 * onto the path space the rule whitelists and the layer manifest are
 * written against.
 */
std::string NormalizePath(const std::string& path);

/** Everything one full analysis produced. */
struct LintReport {
    /// Sorted by (file, line, rule).
    std::vector<Violation> violations;
    /// Every allow() marker with its liveness, sorted by (file, line).
    std::vector<AllowSite> allows;
    /// The observed subsystem include graph in DOT form.
    std::string subsystem_dot;
};

/** Collects source files, then runs every rule over the set. */
class Linter
{
  public:
    /** Registers @p content as the file @p path (normalized). */
    void AddFile(const std::string& path, std::string content);

    /** Reads @p path from disk.  False + *error on I/O failure. */
    bool AddFileFromDisk(const std::string& path, std::string* error);

    /**
     * Recursively adds every *.h / *.cc under @p dir, in sorted order.
     * Skips hidden directories, build trees (build*) and the seeded
     * violation corpus (lint_fixtures); those fixtures are linted by
     * passing them as explicit files.  False + *error if @p dir is not
     * a readable directory.
     */
    bool AddTree(const std::string& dir, std::string* error);

    /**
     * Adds every "file" entry of a compile_commands.json document
     * (CMAKE_EXPORT_COMPILE_COMMANDS=ON).  Entries already registered
     * — e.g. via AddTree — are skipped.  False + *error on parse or
     * I/O failure.
     */
    bool AddCompileCommands(const std::string& path, std::string* error);

    /**
     * Arms the layering pass with the manifest at @p path (LAYERS.toml
     * format).  Without a manifest, reachability is unchecked but
     * observed subsystem cycles are still violations.  False + *error
     * on I/O or parse failure.
     */
    bool LoadLayerManifest(const std::string& path, std::string* error);

    /** Number of registered files. */
    size_t file_count() const { return files_.size(); }

    /**
     * Runs every pass.  @p jobs > 1 scans files on a thread pool; the
     * report is byte-identical at any job count (per-file results land
     * in order-preserving slots, and every cross-file pass runs
     * sequentially over the merged facts).  0 means one job per
     * hardware thread.
     */
    LintReport Analyze(size_t jobs = 1) const;

    /** Analyze(jobs).violations, for callers that only gate. */
    std::vector<Violation> Run(size_t jobs = 1) const;

  private:
    struct SourceFile {
        std::string path;  ///< Normalized.
        std::string content;
    };

    bool AlreadyAdded(const std::string& normalized) const;

    std::vector<SourceFile> files_;
    std::string layer_manifest_toml_;  ///< Raw content; empty = unset.
};

/** Renders @p violation as "file:line: [rule] message". */
std::string FormatViolation(const Violation& violation);

/** Renders @p violation as one flat JSON object (stable key order:
 *  file, line, rule, message). */
std::string FormatViolationJson(const Violation& violation);

}  // namespace spur::lint

#endif  // SPUR_LINT_LINT_H_

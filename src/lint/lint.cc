/**
 * @file
 * The linter orchestrator: file collection, the parallel per-file scan
 * phase, and the sequential cross-file passes (layering, lock-order,
 * exhaustive-switch, suppression hygiene).  Per-file rules live in
 * rules.cc, the token/scope model in cxx_scan.cc.
 */
#include "src/lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "src/lint/include_graph.h"
#include "src/lint/lock_order.h"
#include "src/lint/rules.h"
#include "src/runner/thread_pool.h"
#include "src/stats/run_record.h"
#include "src/sweep/json.h"

namespace spur::lint {

namespace {

bool
StartsWith(const std::string& text, const std::string& prefix)
{
    return text.rfind(prefix, 0) == 0;
}

bool
EndsWith(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// File collection
// ---------------------------------------------------------------------------

std::string
NormalizePath(const std::string& path)
{
    static const char* kRoots[] = {"src/", "tools/", "bench/", "examples/",
                                   "tests/"};
    size_t best = std::string::npos;
    for (const char* root : kRoots) {
        size_t pos = 0;
        while ((pos = path.find(root, pos)) != std::string::npos) {
            if ((pos == 0 || path[pos - 1] == '/') &&
                (best == std::string::npos || pos > best)) {
                best = pos;
            }
            ++pos;
        }
    }
    if (best == std::string::npos || best == 0) {
        return path;
    }
    return path.substr(best);
}

void
Linter::AddFile(const std::string& path, std::string content)
{
    files_.push_back({NormalizePath(path), std::move(content)});
}

bool
Linter::AlreadyAdded(const std::string& normalized) const
{
    for (const SourceFile& file : files_) {
        if (file.path == normalized) {
            return true;
        }
    }
    return false;
}

bool
Linter::AddFileFromDisk(const std::string& path, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot read " + path;
        }
        return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    AddFile(path, content.str());
    return true;
}

bool
Linter::AddTree(const std::string& dir, std::string* error)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        if (error != nullptr) {
            *error = dir + " is not a directory";
        }
        return false;
    }
    std::vector<std::string> paths;
    fs::recursive_directory_iterator it(dir, ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
        if (ec) {
            if (error != nullptr) {
                *error = dir + ": " + ec.message();
            }
            return false;
        }
        const fs::path& path = it->path();
        const std::string name = path.filename().string();
        if (it->is_directory()) {
            // Skip build trees, hidden dirs and the seeded-violation
            // corpus (fixtures are linted as explicit files).
            if (StartsWith(name, "build") || StartsWith(name, ".") ||
                name == "lint_fixtures") {
                it.disable_recursion_pending();
            }
            continue;
        }
        if (EndsWith(name, ".cc") || EndsWith(name, ".h")) {
            paths.push_back(path.string());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
        if (AlreadyAdded(NormalizePath(path))) {
            continue;
        }
        if (!AddFileFromDisk(path, error)) {
            return false;
        }
    }
    return true;
}

bool
Linter::AddCompileCommands(const std::string& path, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot read " + path;
        }
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::optional<sweep::JsonValue> document =
        sweep::ParseJson(buffer.str(), error);
    if (!document) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    if (!document->IsArray()) {
        if (error != nullptr) {
            *error = path + ": expected a JSON array of commands";
        }
        return false;
    }
    std::vector<std::string> paths;
    for (const sweep::JsonValue& entry : document->items()) {
        const sweep::JsonValue* file = entry.Find("file");
        if (file == nullptr || !file->IsString()) {
            continue;
        }
        paths.push_back(file->AsString());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& source : paths) {
        if (AlreadyAdded(NormalizePath(source))) {
            continue;
        }
        if (!AddFileFromDisk(source, error)) {
            return false;
        }
    }
    return true;
}

bool
Linter::LoadLayerManifest(const std::string& path, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot read " + path;
        }
        return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    LayerManifest manifest;  // Parse now so errors surface at load time.
    if (!ParseLayerManifest(content.str(), &manifest, error)) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    layer_manifest_toml_ = content.str();
    return true;
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

namespace {

/** The exhaustive-switch pass over the merged per-file facts. */
void
CheckExhaustiveSwitches(std::vector<FileScan>& scans,
                        std::vector<Violation>* violations)
{
    // Tree-wide enum index.  Same-named enums are fine when their
    // enumerator sets agree (a header scanned plus re-exported facts);
    // when they disagree the name is ambiguous and, being unable to
    // tell which enum a switch means, the pass skips it (conservative).
    std::map<std::string, std::vector<std::string>> enums;
    std::set<std::string> ambiguous;
    for (const FileScan& scan : scans) {
        for (const EnumDef& def : scan.cxx.enums) {
            std::vector<std::string> sorted = def.enumerators;
            std::sort(sorted.begin(), sorted.end());
            const auto it = enums.find(def.name);
            if (it == enums.end()) {
                enums.emplace(def.name, std::move(sorted));
            } else if (it->second != sorted) {
                ambiguous.insert(def.name);
            }
        }
    }

    for (FileScan& scan : scans) {
        for (const SwitchRecord& record : scan.cxx.switches) {
            if (record.has_default || !record.labels_parsed ||
                record.labels.empty()) {
                continue;
            }
            // Every label must name the same enum: the second-to-last
            // component of the qualified label ("A::Color::kRed" and
            // "Color::kRed" both name Color).
            std::string enum_name;
            std::vector<std::string> named;
            bool consistent = true;
            for (const std::string& label : record.labels) {
                const size_t last_sep = label.rfind("::");
                const std::string enumerator = label.substr(last_sep + 2);
                const std::string qualifier = label.substr(0, last_sep);
                const size_t prev_sep = qualifier.rfind("::");
                const std::string name =
                    prev_sep == std::string::npos
                        ? qualifier
                        : qualifier.substr(prev_sep + 2);
                if (enum_name.empty()) {
                    enum_name = name;
                } else if (enum_name != name) {
                    consistent = false;
                    break;
                }
                named.push_back(enumerator);
            }
            if (!consistent || enum_name.empty() ||
                ambiguous.count(enum_name) != 0) {
                continue;
            }
            const auto enum_it = enums.find(enum_name);
            if (enum_it == enums.end()) {
                continue;  // Not a scoped enum the tree defines.
            }
            std::sort(named.begin(), named.end());
            std::vector<std::string> missing;
            std::set_difference(enum_it->second.begin(),
                                enum_it->second.end(), named.begin(),
                                named.end(), std::back_inserter(missing));
            if (missing.empty()) {
                continue;
            }
            if (Suppress(scan, record.line, kExhaustiveSwitchRule)) {
                continue;
            }
            std::string list = missing.front();
            for (size_t i = 1; i < missing.size(); ++i) {
                list += ", " + missing[i];
            }
            violations->push_back(
                {scan.path, record.line, kExhaustiveSwitchRule,
                 "switch over " + enum_name + " has no default and does "
                 "not handle: " + list + " — name every enumerator so "
                 "adding one breaks loudly, or add a default"});
        }
    }
}

}  // namespace

LintReport
Linter::Analyze(size_t jobs) const
{
    // Phase 1: per-file scans, parallel over a thread pool.  Results
    // land in order-preserving slots, so the merge below — and with it
    // every output byte — is identical at any job count.
    std::vector<FileScan> scans(files_.size());
    const auto scan_one = [&](size_t index) {
        scans[index] =
            ScanSourceFile(files_[index].path, files_[index].content);
    };
    if (jobs == 0) {
        jobs = runner::HardwareJobs();
    }
    const size_t workers = std::min(jobs, files_.size());
    if (workers > 1) {
        runner::ThreadPool pool(static_cast<unsigned>(workers));
        for (size_t i = 0; i < files_.size(); ++i) {
            pool.Submit([&scan_one, i] { scan_one(i); });
        }
        // ~ThreadPool drains the queue and joins: a full barrier.
    } else {
        for (size_t i = 0; i < files_.size(); ++i) {
            scan_one(i);
        }
    }

    // Phase 2: sequential cross-file passes over the merged facts.
    LintReport report;
    std::map<std::string, size_t> scan_index;
    for (size_t i = 0; i < scans.size(); ++i) {
        scan_index[scans[i].path] = i;
        report.violations.insert(report.violations.end(),
                                 scans[i].violations.begin(),
                                 scans[i].violations.end());
    }
    const auto suppress = [&](const Violation& violation) {
        if (violation.line == 0) {
            return false;  // Tree-level findings have no site to mark.
        }
        const auto it = scan_index.find(violation.file);
        return it != scan_index.end() &&
               Suppress(scans[it->second], violation.line, violation.rule);
    };

    // schema-version-once, tree level: the home file was scanned but
    // holds no definition.
    for (const FileScan& scan : scans) {
        if (scan.is_schema_home && scan.schema_definitions == 0) {
            report.violations.push_back(
                {scan.path, 0, kSchemaVersionRule,
                 "kSchemaVersion definition missing from its single "
                 "allowed definition site"});
        }
    }

    // Layering: reachability against the manifest (when loaded), plus
    // observed subsystem cycles, which need no manifest to be wrong.
    IncludeGraph graph;
    for (const FileScan& scan : scans) {
        graph.AddFile(scan.path, scan.cxx.includes);
    }
    report.subsystem_dot = graph.ToDot();
    if (!layer_manifest_toml_.empty()) {
        LayerManifest manifest;
        std::string error;
        // Validated at load time; cannot fail here.
        ParseLayerManifest(layer_manifest_toml_, &manifest, &error);
        for (const Violation& violation : graph.CheckLayers(manifest)) {
            if (!suppress(violation)) {
                report.violations.push_back(violation);
            }
        }
    }
    for (const Violation& violation : graph.CheckCycles()) {
        if (!suppress(violation)) {
            report.violations.push_back(violation);
        }
    }

    // Lock order: one global graph over every file's observed edges.
    LockOrderGraph locks;
    for (const FileScan& scan : scans) {
        for (const LockEdge& edge : scan.cxx.lock_edges) {
            locks.AddEdge(edge);
        }
    }
    for (const Violation& violation : locks.CheckCycles()) {
        if (!suppress(violation)) {
            report.violations.push_back(violation);
        }
    }

    // Exhaustive switches (needs the tree-wide enum index).
    CheckExhaustiveSwitches(scans, &report.violations);

    // Suppression hygiene, last: every pass that could mark a site
    // used has run.  dead-allow and allow-budget findings are about
    // the markers themselves and are deliberately not suppressible.
    const std::set<std::string> known_rules = [] {
        std::set<std::string> names;
        for (const RuleInfo& rule : Rules()) {
            names.insert(rule.name);
        }
        return names;
    }();
    std::map<std::string, std::vector<const AllowSite*>> live_by_rule;
    for (const FileScan& scan : scans) {
        for (const AllowSite& site : scan.allows) {
            report.allows.push_back(site);
            if (site.used) {
                live_by_rule[site.rule].push_back(&site);
                continue;
            }
            const std::string reason =
                known_rules.count(site.rule) == 0
                    ? ") names a rule that does not exist"
                    : ") suppresses nothing on this or the next line";
            report.violations.push_back(
                {site.file, site.line, kDeadAllowRule,
                 "stale suppression: allow(" + site.rule + reason +
                     " — delete the marker"});
        }
    }
    for (const auto& [rule, sites] : live_by_rule) {
        const size_t budget = RuleBudget(rule);
        for (size_t i = budget; i < sites.size(); ++i) {
            report.violations.push_back(
                {sites[i]->file, sites[i]->line, kAllowBudgetRule,
                 "suppression site " + std::to_string(i + 1) + " of rule "
                 "'" + rule + "' exceeds its tree-wide budget of " +
                     std::to_string(budget) +
                     "; widen the rule's whitelist instead of "
                     "accumulating markers"});
        }
    }

    std::sort(report.violations.begin(), report.violations.end(),
              [](const Violation& a, const Violation& b) {
                  if (a.file != b.file) {
                      return a.file < b.file;
                  }
                  if (a.line != b.line) {
                      return a.line < b.line;
                  }
                  return a.rule < b.rule;
              });
    std::sort(report.allows.begin(), report.allows.end(),
              [](const AllowSite& a, const AllowSite& b) {
                  if (a.file != b.file) {
                      return a.file < b.file;
                  }
                  return a.line < b.line;
              });
    return report;
}

std::vector<Violation>
Linter::Run(size_t jobs) const
{
    return Analyze(jobs).violations;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string
FormatViolation(const Violation& violation)
{
    // Built up with += (not operator+ chains): GCC 12's -Wrestrict
    // misfires on `const char* + string&&` (GCC PR 105329).
    std::string out = violation.file;
    if (violation.line > 0) {
        out += ":";
        out += std::to_string(violation.line);
    }
    out += ": [";
    out += violation.rule;
    out += "] ";
    out += violation.message;
    return out;
}

std::string
FormatViolationJson(const Violation& violation)
{
    std::string out = "{\"file\": \"";
    out += stats::JsonWriter::Escape(violation.file);
    out += "\", \"line\": ";
    out += std::to_string(violation.line);
    out += ", \"rule\": \"";
    out += stats::JsonWriter::Escape(violation.rule);
    out += "\", \"message\": \"";
    out += stats::JsonWriter::Escape(violation.message);
    out += "\"}";
    return out;
}

}  // namespace spur::lint

#include "src/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/sweep/json.h"

namespace spur::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/** Splits @p content into lines (newline characters removed). */
std::vector<std::string>
SplitLines(const std::string& content)
{
    std::vector<std::string> lines;
    std::string current;
    for (const char c : content) {
        if (c == '\n') {
            lines.push_back(std::move(current));
            current.clear();
        } else if (c != '\r') {
            current.push_back(c);
        }
    }
    if (!current.empty()) {
        lines.push_back(std::move(current));
    }
    return lines;
}

/**
 * Removes // and block comments from @p lines (block state carries
 * across lines), leaving string and character literals intact so the
 * schema_version literal rule still sees them.  Doc comments routinely
 * *mention* forbidden constructs ("unlike std::mt19937 ..."), which
 * must not trip token rules.  String state resets at end of line
 * (ordinary literals cannot span lines), which also self-heals the
 * mis-detection a digit separator like 1'000'000 causes.
 */
std::vector<std::string>
StripComments(const std::vector<std::string>& lines)
{
    enum class State : uint8_t { kCode, kString, kChar, kBlockComment };
    State state = State::kCode;
    std::vector<std::string> out;
    out.reserve(lines.size());
    for (const std::string& line : lines) {
        std::string code;
        code.reserve(line.size());
        if (state != State::kBlockComment) {
            state = State::kCode;
        }
        for (size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char next = (i + 1 < line.size()) ? line[i + 1] : '\0';
            switch (state) {
                case State::kCode:
                    if (c == '/' && next == '/') {
                        i = line.size();  // Rest of the line is comment.
                    } else if (c == '/' && next == '*') {
                        state = State::kBlockComment;
                        ++i;
                    } else {
                        if (c == '"') {
                            state = State::kString;
                        } else if (c == '\'') {
                            state = State::kChar;
                        }
                        code.push_back(c);
                    }
                    break;
                case State::kString:
                case State::kChar:
                    code.push_back(c);
                    if (c == '\\' && next != '\0') {
                        code.push_back(next);
                        ++i;
                    } else if ((state == State::kString && c == '"') ||
                               (state == State::kChar && c == '\'')) {
                        state = State::kCode;
                    }
                    break;
                case State::kBlockComment:
                    if (c == '*' && next == '/') {
                        state = State::kCode;
                        ++i;
                    }
                    break;
            }
        }
        out.push_back(std::move(code));
    }
    return out;
}

bool
IsIdentChar(char c)
{
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/**
 * True when @p text contains @p token starting at a word boundary (the
 * preceding character is not part of an identifier).  @p token may end
 * in punctuation — "time(" matches a bare call but not elapsed_time(.
 * When found, *column (if non-null) receives the 0-based offset.
 */
bool
HasToken(const std::string& text, const std::string& token,
         size_t* column = nullptr)
{
    size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
        if (pos == 0 || !IsIdentChar(text[pos - 1])) {
            if (column != nullptr) {
                *column = pos;
            }
            return true;
        }
        ++pos;
    }
    return false;
}

/** True when the site carries a spur-lint: allow(rule) justification. */
bool
IsSuppressed(const std::vector<std::string>& raw_lines, size_t index,
             const std::string& rule)
{
    const std::string marker = "spur-lint: allow(" + rule + ")";
    if (raw_lines[index].find(marker) != std::string::npos) {
        return true;
    }
    return index > 0 &&
           raw_lines[index - 1].find(marker) != std::string::npos;
}

bool
StartsWith(const std::string& text, const std::string& prefix)
{
    return text.rfind(prefix, 0) == 0;
}

bool
EndsWith(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

/** One token-scan rule: forbidden tokens outside whitelisted paths. */
struct TokenRule {
    const char* name;
    const char* summary;
    std::vector<const char*> tokens;
    /// Normalized path prefixes where the tokens are legitimate.
    std::vector<const char*> allowed_prefixes;
    const char* message;
};

const std::vector<TokenRule>&
TokenRules()
{
    // NOTE: this table spells the forbidden tokens out as literals, so
    // src/lint/ itself is exempted from scanning (see RuleExempt).
    static const std::vector<TokenRule> rules = {
        {"no-rand",
         "platform RNG primitives are forbidden; use the seeded spur::Rng",
         {"rand(", "srand(", "random_device", "random_shuffle", "mt19937"},
         {},
         "platform RNG breaks cross-machine reproducibility; use the "
         "seeded spur::Rng (src/common/random.h)"},
        {"no-wallclock",
         "wall-clock reads are confined to the telemetry/cost layer",
         {"time(", "clock(", "system_clock", "steady_clock",
          "high_resolution_clock", "gettimeofday", "clock_gettime",
          "localtime", "gmtime", "strftime", "asctime", "ctime("},
         {"src/sweep/telemetry.", "src/sweep/cost."},
         "wall-clock read outside the telemetry/cost whitelist; results "
         "must depend only on config and seed"},
        {"no-locale",
         "locale-dependent formatting is forbidden",
         {"setlocale", "std::locale", "imbue(", "localeconv"},
         {},
         "locale-dependent formatting; output bytes must be identical on "
         "every machine"},
        {"no-raw-meta-bits",
         "packed cache-line meta bytes are decoded only by the "
         "LineRef/meta accessors in src/cache/cache.h",
         {"meta::kStateMask", "meta::kProtMask", "meta::kProtShift",
          "meta::kPageDirtyBit", "meta::kBlockDirtyBit"},
         {"src/cache/cache."},
         "raw meta-bit constant outside the cache layer; the packed "
         "layout is an implementation detail of src/cache/cache.h — go "
         "through LineRef/ConstLineRef, or justify the site with "
         "spur-lint: allow(no-raw-meta-bits)"},
    };
    return rules;
}

/** True when no rule applies to @p path at all. */
bool
RuleExempt(const std::string& path)
{
    // The lint layer itself names every forbidden token in its rule
    // table and its tests; scanning it would only flag the scanner.
    return StartsWith(path, "src/lint/") ||
           StartsWith(path, "tests/lint_test.");
}

bool
PathAllowed(const std::string& path,
            const std::vector<const char*>& prefixes)
{
    for (const char* prefix : prefixes) {
        if (StartsWith(path, prefix)) {
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Special rules
// ---------------------------------------------------------------------------

constexpr char kUnorderedRule[] = "no-unordered-output";
constexpr char kSchemaRule[] = "schema-version-once";
constexpr char kSessionRule[] = "bench-session";
constexpr char kHotPathRule[] = "no-virtual-in-hot-path";

/** Marker comment opting a file into the hot-path rule. */
constexpr char kHotPathMarker[] = "spur:hot-path";

/** True when any RAW line carries the hot-path marker (it lives in a
 *  comment, which StripComments would remove). */
bool
HasHotPathMarker(const std::vector<std::string>& raw_lines)
{
    for (const std::string& line : raw_lines) {
        if (line.find(kHotPathMarker) != std::string::npos) {
            return true;
        }
    }
    return false;
}

/**
 * True when @p text contains @p word with identifier boundaries on BOTH
 * sides.  HasToken() only checks the preceding character (its tokens
 * end in punctuation); a keyword scan must also reject suffixes, so
 * `virtual` does not match `virtual_base` or VirtualCache.
 */
bool
HasWord(const std::string& text, const std::string& word)
{
    size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
        const size_t after = pos + word.size();
        const bool right_ok =
            after >= text.size() || !IsIdentChar(text[after]);
        if (left_ok && right_ok) {
            return true;
        }
        ++pos;
    }
    return false;
}

/** Headers whose inclusion marks a file as feeding JSON/table output. */
const std::vector<const char*>&
OutputHeaders()
{
    static const std::vector<const char*> headers = {
        "src/stats/run_record.h",
        "src/common/table.h",
        "src/runner/session.h",
        "src/sweep/",
    };
    return headers;
}

/** True when @p path / @p code feeds JSON or table output. */
bool
FeedsOutput(const std::string& path, const std::vector<std::string>& code)
{
    if (StartsWith(path, "src/stats/") || StartsWith(path, "src/sweep/") ||
        StartsWith(path, "tools/")) {
        return true;
    }
    for (const std::string& line : code) {
        if (line.find("#include") == std::string::npos) {
            continue;
        }
        for (const char* header : OutputHeaders()) {
            if (line.find(header) != std::string::npos) {
                return true;
            }
        }
    }
    return false;
}

/**
 * True when @p code holds a kSchemaVersion *definition* (the token
 * followed by a single '='), as opposed to a use of the constant.
 */
bool
IsSchemaVersionDefinition(const std::string& code)
{
    size_t pos = 0;
    const std::string token = "kSchemaVersion";
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool boundary = pos == 0 || !IsIdentChar(code[pos - 1]);
        size_t after = pos + token.size();
        while (after < code.size() &&
               (code[after] == ' ' || code[after] == '\t')) {
            ++after;
        }
        if (boundary && after < code.size() && code[after] == '=' &&
            (after + 1 >= code.size() || code[after + 1] != '=')) {
            return true;
        }
        ++pos;
    }
    return false;
}

/** The single file allowed to define kSchemaVersion. */
constexpr char kSchemaHome[] = "src/stats/run_record.h";

/** Files allowed to spell the "schema_version" JSON key literal. */
const std::vector<const char*>&
SchemaLiteralWhitelist()
{
    static const std::vector<const char*> allowed = {
        "src/stats/run_record.cc",  // The writer.
        "src/sweep/merge.cc",       // The parser/validator.
        "src/sweep/stream.cc",      // The stream trailer writer/reader.
        "tests/",                   // Round-trip and golden tests.
    };
    return allowed;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::vector<RuleInfo>
Rules()
{
    std::vector<RuleInfo> rules;
    for (const TokenRule& rule : TokenRules()) {
        rules.push_back({rule.name, rule.summary});
    }
    rules.push_back({kUnorderedRule,
                     "no unordered containers in files that feed JSON or "
                     "table output (iteration order is unspecified)"});
    rules.push_back({kSchemaRule,
                     "kSchemaVersion is defined exactly once, in " +
                         std::string(kSchemaHome)});
    rules.push_back({kSessionRule,
                     "every bench main() records through "
                     "runner::BenchSession, not raw stdout"});
    rules.push_back({kHotPathRule,
                     "no virtual members in files marked // spur:hot-path "
                     "(the per-reference path is devirtualized)"});
    return rules;
}

std::string
NormalizePath(const std::string& path)
{
    static const char* kRoots[] = {"src/", "tools/", "bench/", "examples/",
                                   "tests/"};
    size_t best = std::string::npos;
    for (const char* root : kRoots) {
        size_t pos = 0;
        while ((pos = path.find(root, pos)) != std::string::npos) {
            if ((pos == 0 || path[pos - 1] == '/') &&
                (best == std::string::npos || pos > best)) {
                best = pos;
            }
            ++pos;
        }
    }
    if (best == std::string::npos || best == 0) {
        return path;
    }
    return path.substr(best);
}

void
Linter::AddFile(const std::string& path, std::string content)
{
    files_.push_back({NormalizePath(path), std::move(content)});
}

bool
Linter::AlreadyAdded(const std::string& normalized) const
{
    for (const SourceFile& file : files_) {
        if (file.path == normalized) {
            return true;
        }
    }
    return false;
}

bool
Linter::AddFileFromDisk(const std::string& path, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot read " + path;
        }
        return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    AddFile(path, content.str());
    return true;
}

bool
Linter::AddTree(const std::string& dir, std::string* error)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        if (error != nullptr) {
            *error = dir + " is not a directory";
        }
        return false;
    }
    std::vector<std::string> paths;
    fs::recursive_directory_iterator it(dir, ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
        if (ec) {
            if (error != nullptr) {
                *error = dir + ": " + ec.message();
            }
            return false;
        }
        const fs::path& path = it->path();
        const std::string name = path.filename().string();
        if (it->is_directory()) {
            // Skip build trees, hidden dirs and the seeded-violation
            // corpus (fixtures are linted as explicit files).
            if (StartsWith(name, "build") || StartsWith(name, ".") ||
                name == "lint_fixtures") {
                it.disable_recursion_pending();
            }
            continue;
        }
        if (EndsWith(name, ".cc") || EndsWith(name, ".h")) {
            paths.push_back(path.string());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
        if (AlreadyAdded(NormalizePath(path))) {
            continue;
        }
        if (!AddFileFromDisk(path, error)) {
            return false;
        }
    }
    return true;
}

bool
Linter::AddCompileCommands(const std::string& path, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot read " + path;
        }
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::optional<sweep::JsonValue> document =
        sweep::ParseJson(buffer.str(), error);
    if (!document) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    if (!document->IsArray()) {
        if (error != nullptr) {
            *error = path + ": expected a JSON array of commands";
        }
        return false;
    }
    std::vector<std::string> paths;
    for (const sweep::JsonValue& entry : document->items()) {
        const sweep::JsonValue* file = entry.Find("file");
        if (file == nullptr || !file->IsString()) {
            continue;
        }
        paths.push_back(file->AsString());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& source : paths) {
        if (AlreadyAdded(NormalizePath(source))) {
            continue;
        }
        if (!AddFileFromDisk(source, error)) {
            return false;
        }
    }
    return true;
}

std::vector<Violation>
Linter::Run() const
{
    std::vector<Violation> violations;
    size_t schema_definitions_in_home = 0;
    bool schema_home_seen = false;

    for (const SourceFile& file : files_) {
        if (RuleExempt(file.path)) {
            continue;
        }
        const std::vector<std::string> raw = SplitLines(file.content);
        const std::vector<std::string> code = StripComments(raw);

        // Token rules.
        for (const TokenRule& rule : TokenRules()) {
            if (PathAllowed(file.path, rule.allowed_prefixes)) {
                continue;
            }
            for (size_t i = 0; i < code.size(); ++i) {
                for (const char* token : rule.tokens) {
                    if (!HasToken(code[i], token)) {
                        continue;
                    }
                    if (IsSuppressed(raw, i, rule.name)) {
                        break;
                    }
                    violations.push_back(
                        {file.path, i + 1, rule.name,
                         std::string("'") + token + "': " + rule.message});
                    break;  // One finding per rule per line.
                }
            }
        }

        // no-unordered-output.
        if (FeedsOutput(file.path, code)) {
            for (size_t i = 0; i < code.size(); ++i) {
                if (!HasToken(code[i], "unordered_map") &&
                    !HasToken(code[i], "unordered_set")) {
                    continue;
                }
                if (IsSuppressed(raw, i, kUnorderedRule)) {
                    continue;
                }
                violations.push_back(
                    {file.path, i + 1, kUnorderedRule,
                     "unordered container in output-feeding code; "
                     "iteration order is unspecified, so JSON/table bytes "
                     "would vary by platform — use std::map or a sorted "
                     "vector"});
            }
        }

        // schema-version-once.
        const bool is_schema_home = file.path == kSchemaHome;
        schema_home_seen = schema_home_seen || is_schema_home;
        for (size_t i = 0; i < code.size(); ++i) {
            if (IsSchemaVersionDefinition(code[i])) {
                if (is_schema_home) {
                    ++schema_definitions_in_home;
                    if (schema_definitions_in_home > 1 &&
                        !IsSuppressed(raw, i, kSchemaRule)) {
                        violations.push_back(
                            {file.path, i + 1, kSchemaRule,
                             "duplicate kSchemaVersion definition; the "
                             "schema version must have exactly one "
                             "definition site"});
                    }
                } else if (!IsSuppressed(raw, i, kSchemaRule)) {
                    violations.push_back(
                        {file.path, i + 1, kSchemaRule,
                         std::string("kSchemaVersion defined outside ") +
                             kSchemaHome +
                             "; a second definition site lets the writer "
                             "and validator drift apart"});
                }
            }
            if (code[i].find("\"schema_version\"") != std::string::npos &&
                !PathAllowed(file.path, SchemaLiteralWhitelist()) &&
                !IsSuppressed(raw, i, kSchemaRule)) {
                violations.push_back(
                    {file.path, i + 1, kSchemaRule,
                     "\"schema_version\" key spelled outside the "
                     "writer/parser; route document headers through "
                     "stats::JsonWriter and sweep::ParseSweepDocument"});
            }
        }

        // no-virtual-in-hot-path: files that opt in with the marker
        // comment went through devirtualization (compile-time policy
        // templates, member-fn-pointer dispatch); a virtual member
        // reintroduced there silently re-inserts an indirect call into
        // the per-reference loop.
        if (HasHotPathMarker(raw)) {
            for (size_t i = 0; i < code.size(); ++i) {
                if (!HasWord(code[i], "virtual")) {
                    continue;
                }
                if (IsSuppressed(raw, i, kHotPathRule)) {
                    continue;
                }
                violations.push_back(
                    {file.path, i + 1, kHotPathRule,
                     "'virtual' in a file marked // spur:hot-path; the "
                     "hot path is devirtualized (compile-time policy "
                     "templates, DESIGN.md §15) — dispatch statically, "
                     "move the type out of the marked file, or justify "
                     "the site with spur-lint: allow(...)"});
            }
        }

        // bench-session.
        if (StartsWith(file.path, "bench/") && EndsWith(file.path, ".cc")) {
            bool uses_session = false;
            for (const std::string& line : code) {
                if (HasToken(line, "BenchSession")) {
                    uses_session = true;
                    break;
                }
            }
            if (!uses_session) {
                for (size_t i = 0; i < code.size(); ++i) {
                    if (!HasToken(code[i], "main(")) {
                        continue;
                    }
                    if (IsSuppressed(raw, i, kSessionRule)) {
                        continue;
                    }
                    violations.push_back(
                        {file.path, i + 1, kSessionRule,
                         "bench defines main() without recording through "
                         "runner::BenchSession (src/runner/session.h); "
                         "raw-stdout benches are invisible to --json, "
                         "--shard and spur_sweep"});
                }
            }
        }
    }

    if (schema_home_seen && schema_definitions_in_home == 0) {
        violations.push_back(
            {kSchemaHome, 0, kSchemaRule,
             "kSchemaVersion definition missing from its single allowed "
             "definition site"});
    }

    std::sort(violations.begin(), violations.end(),
              [](const Violation& a, const Violation& b) {
                  if (a.file != b.file) {
                      return a.file < b.file;
                  }
                  if (a.line != b.line) {
                      return a.line < b.line;
                  }
                  return a.rule < b.rule;
              });
    return violations;
}

std::string
FormatViolation(const Violation& violation)
{
    // Built up with += (not operator+ chains): GCC 12's -Wrestrict
    // misfires on `const char* + string&&` (GCC PR 105329).
    std::string out = violation.file;
    if (violation.line > 0) {
        out += ":";
        out += std::to_string(violation.line);
    }
    out += ": [";
    out += violation.rule;
    out += "] ";
    out += violation.message;
    return out;
}

}  // namespace spur::lint

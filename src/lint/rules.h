/**
 * @file
 * Internal interface between the per-file rule scan (rules.cc) and the
 * orchestrator (lint.cc).  Not installed; tools use lint.h.
 *
 * ScanSourceFile is the unit of parallelism: it owns everything that
 * can be computed from one file in isolation — the text-rule
 * violations, the allow() marker sites, and the token/scope facts the
 * cross-file passes consume — so Analyze() can fan files out over a
 * thread pool and still merge byte-identically in file order.
 */
#ifndef SPUR_LINT_RULES_H_
#define SPUR_LINT_RULES_H_

#include <string>
#include <vector>

#include "src/lint/cxx_scan.h"
#include "src/lint/lint.h"

namespace spur::lint {

/** Everything one file contributes to the analysis. */
struct FileScan {
    std::string path;  ///< Normalized.
    /// Findings of the per-file rules, in scan order.
    std::vector<Violation> violations;
    /// Every spur-lint: allow(...) marker (empty for rule-exempt files).
    std::vector<AllowSite> allows;
    /// Token/scope facts for the cross-file passes.
    CxxScan cxx;
    /// kSchemaVersion definitions found when this file is the schema
    /// home (the tree-level missing-definition check needs the count).
    size_t schema_definitions = 0;
    bool is_schema_home = false;
};

/** Runs every per-file rule plus the token/scope scan over one file. */
FileScan ScanSourceFile(const std::string& path,
                        const std::string& content);

/**
 * True when an allow(@p rule) marker in @p scan covers @p line (marker
 * on the same or the preceding line); marks the site used.  The
 * per-file rules and the cross-file passes in lint.cc both suppress
 * through this, so the dead-allow pass sees every consumer.
 */
bool Suppress(FileScan& scan, size_t line, const std::string& rule);

/** Rule names of the suppression-hygiene passes (defined in rules.cc,
 *  reported by lint.cc). */
inline constexpr char kDeadAllowRule[] = "dead-allow";
inline constexpr char kAllowBudgetRule[] = "allow-budget";
inline constexpr char kExhaustiveSwitchRule[] = "exhaustive-switch";

/** The schema rule spans file and tree level, so both halves share
 *  these (per-file in rules.cc, tree-level in lint.cc). */
inline constexpr char kSchemaVersionRule[] = "schema-version-once";
inline constexpr char kSchemaVersionHome[] = "src/stats/run_record.h";

}  // namespace spur::lint

#endif  // SPUR_LINT_RULES_H_

/**
 * @file
 * Static lock-order deadlock detection (DESIGN.md §18).
 *
 * The scanner (cxx_scan.h) reports every site that acquires a
 * spur::MutexLock — or blocks in CondVar::Wait/WaitFor — while already
 * holding another lock in the same function context.  Each such pair is
 * an edge `held -> acquired` in a global lock-order graph; a cycle in
 * that graph means two code paths take the same locks in opposite
 * orders, which is a deadlock waiting for the right interleaving.
 *
 * This complements the clang thread-safety annotations (§13): the
 * annotations prove each individual access holds the right lock, but
 * say nothing about the *order* different call sites impose between
 * locks.  TSan can see orders, but only on the interleavings a test
 * happens to execute; the graph here is over every nesting the source
 * spells out, on every build.
 *
 * The model is intraprocedural: a lock named through a local object
 * gets a function-scoped node id and can never alias another
 * function's locks, so findings are conservative — a reported cycle
 * names real global/member locks with witnessing sites for every edge.
 */
#ifndef SPUR_LINT_LOCK_ORDER_H_
#define SPUR_LINT_LOCK_ORDER_H_

#include <string>
#include <vector>

#include "src/lint/cxx_scan.h"
#include "src/lint/lint.h"

namespace spur::lint {

/** Rule name of every lock-order finding. */
inline constexpr char kLockOrderRule[] = "lock-order";

/** One-line summary for --list-rules / DESIGN.md. */
inline constexpr char kLockOrderSummary[] =
    "the global lock-acquisition-order graph (nested MutexLock / "
    "CondVar::Wait sites) is acyclic";

/** The global lock-order graph accumulated over every scanned file. */
class LockOrderGraph
{
  public:
    /** Adds one observed nesting; the first witness per (first, second)
     *  pair is kept. */
    void AddEdge(const LockEdge& edge);

    /**
     * One violation per cycle in the graph, each anchored at the
     * witnessing site of its first edge and naming a witness for every
     * edge in the cycle.  Deterministic: cycles report in canonical
     * rotation (smallest node first), sorted.
     */
    std::vector<Violation> CheckCycles() const;

    /** Number of distinct edges. */
    size_t edge_count() const { return edges_.size(); }

  private:
    std::vector<LockEdge> edges_;
};

}  // namespace spur::lint

#endif  // SPUR_LINT_LOCK_ORDER_H_

#include "src/lint/include_graph.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <sstream>
#include <utility>

namespace spur::lint {

namespace {

std::string
Trim(const std::string& text)
{
    size_t first = 0;
    while (first < text.size() &&
           (text[first] == ' ' || text[first] == '\t')) {
        ++first;
    }
    size_t last = text.size();
    while (last > first &&
           (text[last - 1] == ' ' || text[last - 1] == '\t')) {
        --last;
    }
    return text.substr(first, last - first);
}

/** Strips a # comment that is not inside a quoted string. */
std::string
StripTomlComment(const std::string& line)
{
    bool in_string = false;
    for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"') {
            in_string = !in_string;
        } else if (line[i] == '#' && !in_string) {
            return line.substr(0, i);
        }
    }
    return line;
}

}  // namespace

bool
LayerManifest::Declares(const std::string& subsystem) const
{
    return deps.count(subsystem) != 0;
}

bool
LayerManifest::Unconstrained(const std::string& subsystem) const
{
    const auto it = deps.find(subsystem);
    if (it == deps.end()) {
        return false;
    }
    return std::find(it->second.begin(), it->second.end(), "*") !=
           it->second.end();
}

std::set<std::string>
LayerManifest::Closure(const std::string& subsystem) const
{
    std::set<std::string> closure = {subsystem};
    std::deque<std::string> frontier = {subsystem};
    while (!frontier.empty()) {
        const std::string current = frontier.front();
        frontier.pop_front();
        const auto it = deps.find(current);
        if (it == deps.end()) {
            continue;
        }
        for (const std::string& dep : it->second) {
            if (closure.insert(dep).second) {
                frontier.push_back(dep);
            }
        }
    }
    return closure;
}

bool
ParseLayerManifest(const std::string& content, LayerManifest* out,
                   std::string* error)
{
    LayerManifest manifest;
    const std::vector<std::string> lines = SplitLines(content);
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string line = Trim(StripTomlComment(lines[i]));
        if (line.empty()) {
            continue;
        }
        if (line.front() == '[' && line.back() == ']') {
            continue;  // Section header ([layers]).
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            if (error != nullptr) {
                *error = "line " + std::to_string(i + 1) +
                         ": expected `name = [\"dep\", ...]`";
            }
            return false;
        }
        const std::string name = Trim(line.substr(0, eq));
        const std::string value = Trim(line.substr(eq + 1));
        if (name.empty() || value.size() < 2 || value.front() != '[' ||
            value.back() != ']') {
            if (error != nullptr) {
                *error = "line " + std::to_string(i + 1) +
                         ": expected `name = [\"dep\", ...]`";
            }
            return false;
        }
        std::vector<std::string> entry_deps;
        size_t pos = 1;
        while (true) {
            const size_t open = value.find('"', pos);
            if (open == std::string::npos) {
                break;
            }
            const size_t close = value.find('"', open + 1);
            if (close == std::string::npos) {
                if (error != nullptr) {
                    *error = "line " + std::to_string(i + 1) +
                             ": unterminated string";
                }
                return false;
            }
            entry_deps.push_back(value.substr(open + 1, close - open - 1));
            pos = close + 1;
        }
        std::sort(entry_deps.begin(), entry_deps.end());
        if (!manifest.deps.emplace(name, std::move(entry_deps)).second) {
            if (error != nullptr) {
                *error = "line " + std::to_string(i + 1) +
                         ": duplicate subsystem '" + name + "'";
            }
            return false;
        }
    }
    *out = std::move(manifest);
    return true;
}

bool
LoadLayerManifest(const std::string& path, LayerManifest* out,
                  std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot read " + path;
        }
        return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    if (!ParseLayerManifest(content.str(), out, error)) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    return true;
}

std::string
SubsystemOf(const std::string& path)
{
    if (path.rfind("src/", 0) == 0) {
        const size_t end = path.find('/', 4);
        if (end == std::string::npos) {
            return "";  // A file directly under src/ has no subsystem.
        }
        return path.substr(4, end - 4);
    }
    for (const char* shell : {"tools/", "bench/", "examples/", "tests/"}) {
        if (path.rfind(shell, 0) == 0) {
            return std::string(shell, std::string(shell).size() - 1);
        }
    }
    return "";
}

void
IncludeGraph::AddFile(const std::string& path,
                      const std::vector<IncludeDirective>& includes)
{
    files_[path] = includes;
}

std::vector<Violation>
IncludeGraph::CheckLayers(const LayerManifest& manifest) const
{
    std::vector<Violation> violations;
    std::set<std::string> undeclared_reported;
    std::map<std::string, std::set<std::string>> closures;

    for (const auto& [file, includes] : files_) {
        const std::string subsystem = SubsystemOf(file);
        if (subsystem.empty()) {
            continue;
        }
        if (!manifest.Declares(subsystem)) {
            if (undeclared_reported.insert(subsystem).second) {
                violations.push_back(
                    {file, 0, kLayeringRule,
                     "subsystem '" + subsystem +
                         "' is not declared in LAYERS.toml; add an entry "
                         "listing its direct dependencies"});
            }
            continue;
        }
        if (manifest.Unconstrained(subsystem)) {
            continue;
        }
        auto closure_it = closures.find(subsystem);
        if (closure_it == closures.end()) {
            closure_it =
                closures.emplace(subsystem, manifest.Closure(subsystem))
                    .first;
        }
        const std::set<std::string>& closure = closure_it->second;

        // BFS over the file-level graph: the first time a forbidden
        // subsystem is reached, the path that got there is a shortest
        // witnessing chain.  One finding per (file, forbidden subsystem).
        struct Step {
            std::string path;
            std::vector<std::string> chain;  ///< Including path itself.
            size_t first_hop_line = 0;
        };
        std::set<std::string> visited = {file};
        std::set<std::string> flagged;
        std::deque<Step> frontier = {{file, {file}, 0}};
        while (!frontier.empty()) {
            const Step step = frontier.front();
            frontier.pop_front();
            const auto file_it = files_.find(step.path);
            if (file_it == files_.end()) {
                continue;  // Unregistered leaf (nothing to expand).
            }
            for (const IncludeDirective& include : file_it->second) {
                const std::string target = SubsystemOf(include.path);
                if (target.empty() || !visited.insert(include.path).second) {
                    continue;
                }
                Step next{include.path, step.chain, step.first_hop_line};
                next.chain.push_back(include.path);
                if (next.first_hop_line == 0) {
                    next.first_hop_line = include.line;
                }
                if (target == subsystem || closure.count(target) != 0) {
                    frontier.push_back(std::move(next));
                    continue;
                }
                if (!flagged.insert(target).second) {
                    continue;
                }
                std::string chain_text = next.chain.front();
                for (size_t i = 1; i < next.chain.size(); ++i) {
                    chain_text += " -> " + next.chain[i];
                }
                const std::string reason =
                    manifest.Declares(target)
                        ? "' which is outside '" + subsystem +
                              "'s allowed closure in LAYERS.toml"
                        : "' which LAYERS.toml does not declare";
                violations.push_back(
                    {file, next.first_hop_line, kLayeringRule,
                     "include chain reaches subsystem '" + target +
                         reason + ": " + chain_text});
            }
        }
    }
    return violations;
}

std::map<std::string, std::map<std::string, std::string>>
IncludeGraph::SubsystemEdges() const
{
    std::map<std::string, std::map<std::string, std::string>> edges;
    for (const auto& [file, includes] : files_) {
        const std::string from = SubsystemOf(file);
        if (from.empty()) {
            continue;
        }
        for (const IncludeDirective& include : includes) {
            const std::string to = SubsystemOf(include.path);
            if (to.empty() || to == from) {
                continue;
            }
            edges[from].emplace(to, file + " includes " + include.path);
        }
    }
    return edges;
}

std::vector<Violation>
IncludeGraph::CheckCycles() const
{
    const auto edges = SubsystemEdges();

    // Iterative DFS with an explicit stack; a back edge into the gray
    // set closes a cycle.  Deterministic: roots and neighbors visit in
    // sorted order, and each cycle reports once under a canonical
    // rotation (smallest member first).
    std::vector<Violation> violations;
    std::set<std::string> done;
    std::set<std::string> reported;
    for (const auto& [root, unused] : edges) {
        (void)unused;
        if (done.count(root) != 0) {
            continue;
        }
        std::vector<std::string> path;
        std::set<std::string> on_path;
        // Each frame: (node, next neighbor iterator position).
        std::vector<std::pair<std::string, size_t>> stack = {{root, 0}};
        while (!stack.empty()) {
            auto& [node, next_index] = stack.back();
            const auto node_edges = edges.find(node);
            if (next_index == 0) {
                path.push_back(node);
                on_path.insert(node);
            }
            bool descended = false;
            if (node_edges != edges.end()) {
                size_t index = 0;
                for (const auto& [neighbor, witness] : node_edges->second) {
                    (void)witness;
                    if (index++ < next_index) {
                        continue;
                    }
                    ++next_index;
                    if (on_path.count(neighbor) != 0) {
                        // Cycle: neighbor ... node -> neighbor.
                        std::vector<std::string> cycle;
                        bool in_cycle = false;
                        for (const std::string& member : path) {
                            in_cycle = in_cycle || member == neighbor;
                            if (in_cycle) {
                                cycle.push_back(member);
                            }
                        }
                        const auto smallest = std::min_element(
                            cycle.begin(), cycle.end());
                        std::rotate(cycle.begin(), smallest, cycle.end());
                        std::string key;
                        std::string text;
                        for (const std::string& member : cycle) {
                            key += member + ">";
                            text += member + " -> ";
                        }
                        text += cycle.front();
                        if (reported.insert(key).second) {
                            std::string witnesses;
                            for (size_t i = 0; i < cycle.size(); ++i) {
                                const std::string& a = cycle[i];
                                const std::string& b =
                                    cycle[(i + 1) % cycle.size()];
                                witnesses += "; " + edges.at(a).at(b);
                            }
                            const std::string& first_witness =
                                edges.at(cycle.front())
                                    .at(cycle[1 % cycle.size()]);
                            const std::string anchor = first_witness.substr(
                                0, first_witness.find(" includes "));
                            violations.push_back(
                                {anchor, 0, kLayeringRule,
                                 "subsystem include cycle: " + text +
                                     witnesses});
                        }
                        continue;
                    }
                    if (done.count(neighbor) == 0) {
                        stack.push_back({neighbor, 0});
                        descended = true;
                        break;
                    }
                }
            }
            if (!descended) {
                done.insert(node);
                on_path.erase(node);
                path.pop_back();
                stack.pop_back();
            }
        }
    }
    return violations;
}

std::string
IncludeGraph::ToDot() const
{
    std::string dot = "digraph spur_subsystems {\n";
    for (const auto& [from, targets] : SubsystemEdges()) {
        for (const auto& [to, witness] : targets) {
            (void)witness;
            dot += "    \"" + from + "\" -> \"" + to + "\";\n";
        }
    }
    dot += "}\n";
    return dot;
}

}  // namespace spur::lint

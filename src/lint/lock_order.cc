#include "src/lint/lock_order.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace spur::lint {

void
LockOrderGraph::AddEdge(const LockEdge& edge)
{
    for (const LockEdge& existing : edges_) {
        if (existing.first == edge.first &&
            existing.second == edge.second) {
            return;  // First witness wins (files are added in order).
        }
    }
    edges_.push_back(edge);
}

std::vector<Violation>
LockOrderGraph::CheckCycles() const
{
    std::map<std::string, std::map<std::string, const LockEdge*>> graph;
    for (const LockEdge& edge : edges_) {
        graph[edge.first].emplace(edge.second, &edge);
    }

    // DFS from every node in sorted order; a back edge into the gray
    // path closes a cycle, reported once under a canonical rotation.
    std::vector<Violation> violations;
    std::set<std::string> done;
    std::set<std::string> reported;
    for (const auto& [root, unused] : graph) {
        (void)unused;
        if (done.count(root) != 0) {
            continue;
        }
        std::vector<std::string> path;
        std::set<std::string> on_path;
        std::vector<std::pair<std::string, size_t>> stack = {{root, 0}};
        while (!stack.empty()) {
            auto& [node, next_index] = stack.back();
            if (next_index == 0) {
                path.push_back(node);
                on_path.insert(node);
            }
            bool descended = false;
            const auto node_edges = graph.find(node);
            if (node_edges != graph.end()) {
                size_t index = 0;
                for (const auto& [neighbor, witness] : node_edges->second) {
                    (void)witness;
                    if (index++ < next_index) {
                        continue;
                    }
                    ++next_index;
                    if (on_path.count(neighbor) != 0) {
                        std::vector<std::string> cycle;
                        bool in_cycle = false;
                        for (const std::string& member : path) {
                            in_cycle = in_cycle || member == neighbor;
                            if (in_cycle) {
                                cycle.push_back(member);
                            }
                        }
                        const auto smallest =
                            std::min_element(cycle.begin(), cycle.end());
                        std::rotate(cycle.begin(), smallest, cycle.end());
                        std::string key;
                        for (const std::string& member : cycle) {
                            key += member + ">";
                        }
                        if (!reported.insert(key).second) {
                            continue;
                        }
                        std::string order = cycle.front();
                        for (size_t i = 1; i < cycle.size(); ++i) {
                            order += " -> " + cycle[i];
                        }
                        order += " -> " + cycle.front();
                        std::string witnesses;
                        for (size_t i = 0; i < cycle.size(); ++i) {
                            const LockEdge* e =
                                graph.at(cycle[i])
                                    .at(cycle[(i + 1) % cycle.size()]);
                            witnesses += "; " + e->first + " -> " +
                                         e->second +
                                         (e->wait ? " (wait)" : "") +
                                         " at " + e->file + ":" +
                                         std::to_string(e->line) +
                                         " in " + e->function;
                        }
                        const LockEdge* anchor =
                            graph.at(cycle.front())
                                .at(cycle[1 % cycle.size()]);
                        violations.push_back(
                            {anchor->file, anchor->line, kLockOrderRule,
                             "lock-order cycle " + order +
                                 ": two code paths acquire these locks "
                                 "in opposite orders, which deadlocks "
                                 "under the right interleaving" +
                                 witnesses});
                        continue;
                    }
                    if (done.count(neighbor) == 0) {
                        stack.push_back({neighbor, 0});
                        descended = true;
                        break;
                    }
                }
            }
            if (!descended) {
                done.insert(node);
                on_path.erase(node);
                path.pop_back();
                stack.pop_back();
            }
        }
    }
    return violations;
}

}  // namespace spur::lint

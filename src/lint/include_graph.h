/**
 * @file
 * The layering pass: the observed #include graph checked against the
 * checked-in subsystem manifest (LAYERS.toml at the repo root).
 *
 * A subsystem is the second path component of a src/ file
 * (src/cache/... -> "cache") or the top-level directory for the shells
 * (tools/, bench/, examples/, tests/).  The manifest lists each
 * subsystem's *direct* dependencies; the allowed reach is the
 * transitive closure of that list, so the check is: every file's
 * transitive include reach stays inside its subsystem's closure.
 * Violations carry the shortest witnessing include chain, found by BFS
 * over the file-level graph, and anchor at the first-hop #include line
 * so they can be suppressed like any other finding.
 *
 * Two findings need no manifest semantics at all and are always
 * errors: a subsystem missing from the manifest, and an observed cycle
 * in the subsystem graph (even one whose edges are all individually
 * declared — a cyclic layering is no layering).
 */
#ifndef SPUR_LINT_INCLUDE_GRAPH_H_
#define SPUR_LINT_INCLUDE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/lint/cxx_scan.h"
#include "src/lint/lint.h"

namespace spur::lint {

/** Rule name of every layering finding. */
inline constexpr char kLayeringRule[] = "layering";

/** One-line summary for --list-rules / DESIGN.md. */
inline constexpr char kLayeringSummary[] =
    "every file's transitive include reach stays inside its subsystem's "
    "LAYERS.toml closure; the subsystem graph is acyclic";

/** The parsed LAYERS.toml: subsystem -> direct dependencies. */
struct LayerManifest {
    /// Sorted subsystem -> sorted direct deps ("*" = unconstrained).
    std::map<std::string, std::vector<std::string>> deps;

    bool empty() const { return deps.empty(); }
    bool Declares(const std::string& subsystem) const;
    bool Unconstrained(const std::string& subsystem) const;

    /** Transitive closure of @p subsystem's deps (itself included). */
    std::set<std::string> Closure(const std::string& subsystem) const;
};

/**
 * Parses the [layers] manifest format: `name = ["dep", ...]` entries,
 * full- and end-of-line # comments, one entry per line.  False +
 * *error on malformed input.
 */
bool ParseLayerManifest(const std::string& content, LayerManifest* out,
                        std::string* error);

/** ParseLayerManifest over a file.  False + *error on I/O failure. */
bool LoadLayerManifest(const std::string& path, LayerManifest* out,
                       std::string* error);

/** Subsystem of a normalized path ("" when it has none). */
std::string SubsystemOf(const std::string& path);

/** The observed file-level include graph of one linter run. */
class IncludeGraph
{
  public:
    /** Registers @p path (normalized) with its include directives. */
    void AddFile(const std::string& path,
                 const std::vector<IncludeDirective>& includes);

    /**
     * The reachability check described in the file comment.  One
     * violation per (file, forbidden subsystem), carrying the shortest
     * include chain; plus one per subsystem missing from the manifest.
     */
    std::vector<Violation> CheckLayers(const LayerManifest& manifest) const;

    /** One violation per strongly-connected component of the observed
     *  subsystem graph (manifest-independent). */
    std::vector<Violation> CheckCycles() const;

    /** The observed subsystem graph in DOT form, edges sorted. */
    std::string ToDot() const;

  private:
    /// Subsystem -> subsystem -> one witnessing "file includes path".
    std::map<std::string, std::map<std::string, std::string>>
    SubsystemEdges() const;

    std::map<std::string, std::vector<IncludeDirective>> files_;
};

}  // namespace spur::lint

#endif  // SPUR_LINT_INCLUDE_GRAPH_H_

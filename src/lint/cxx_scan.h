/**
 * @file
 * The lightweight C++ token/scope model shared by every semantic lint
 * pass (DESIGN.md §18).
 *
 * This is deliberately not a parser: it is a tokenizer plus a scoped
 * scanner that tracks just enough structure — namespace/class/function/
 * lambda nesting, brace depth, qualified-identifier chains — to extract
 * the facts the cross-file passes need:
 *
 *   - #include directives            (layering pass, include_graph.h)
 *   - scoped-enum definitions and
 *     switch statements with labels  (exhaustive-switch pass)
 *   - nested lock acquisitions and
 *     condition waits                (lock-order pass, lock_order.h)
 *
 * Everything here errs on the side of *missing* a construct rather than
 * misreading one: a switch whose labels do not parse as Enum::Member is
 * skipped, a lock expression that cannot be normalized becomes a
 * function-local node that can never alias another function's locks.
 * The passes built on top inherit that conservatism — they only report
 * what the scan established positively.
 */
#ifndef SPUR_LINT_CXX_SCAN_H_
#define SPUR_LINT_CXX_SCAN_H_

#include <cstddef>
#include <string>
#include <vector>

namespace spur::lint {

// ---------------------------------------------------------------------------
// Line utilities (shared with the text rules in rules.cc)
// ---------------------------------------------------------------------------

/** Splits @p content into lines (newline characters removed). */
std::vector<std::string> SplitLines(const std::string& content);

/**
 * Removes // and block comments from @p lines (block state carries
 * across lines), leaving string and character literals intact.  String
 * state resets at end of line, which also self-heals the mis-detection
 * a digit separator like 1'000'000 causes.
 */
std::vector<std::string> StripComments(const std::vector<std::string>& lines);

/** True for [A-Za-z0-9_]. */
bool IsIdentChar(char c);

/**
 * True when @p text contains @p token starting at a word boundary (the
 * preceding character is not part of an identifier).  @p token may end
 * in punctuation — "time(" matches a bare call but not elapsed_time(.
 * When found, *column (if non-null) receives the 0-based offset.
 */
bool HasToken(const std::string& text, const std::string& token,
              size_t* column = nullptr);

/** True when @p text contains @p word with identifier boundaries on
 *  BOTH sides, so `virtual` does not match VirtualCache. */
bool HasWord(const std::string& text, const std::string& word);

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

/** One lexical token with its 1-based source line. */
struct Token {
    std::string text;
    size_t line = 0;
};

/**
 * Tokenizes comment-stripped code lines.  Qualified identifier chains
 * (`sim::TimeBucket::kCpu`, `::g_flag`) are single tokens; `->` is one
 * token; string and character literals collapse to `""` / `''` so their
 * contents can never fake code; preprocessor lines are dropped (use
 * CxxScan::includes for the #include facts).
 */
std::vector<Token> Tokenize(const std::vector<std::string>& code);

// ---------------------------------------------------------------------------
// Scan results
// ---------------------------------------------------------------------------

/** One `#include "..."` directive (quoted form only). */
struct IncludeDirective {
    size_t line = 0;   ///< 1-based.
    std::string path;  ///< As written, e.g. "src/cache/cache.h".
};

/** One scoped-enum definition (`enum class Name { ... }`). */
struct EnumDef {
    std::string name;  ///< Unqualified.
    std::vector<std::string> enumerators;
    size_t line = 0;
};

/** One switch statement and what its labels established. */
struct SwitchRecord {
    size_t line = 0;
    bool has_default = false;
    /// False when any label failed to parse as a qualified Enum::Member
    /// (numeric labels, unscoped enumerators): the pass must skip it.
    bool labels_parsed = true;
    std::vector<std::string> labels;  ///< Qualified, e.g. "Color::kRed".
};

/**
 * One observed lock-order edge: @c second was acquired (or waited on)
 * while @c first was held in the same function context.  Node ids are
 * normalized so the same lock names the same node across files:
 * globals and qualified names stay as written, members become
 * `Class::member`, and anything function-local becomes
 * `file:function:expr` (which can never alias across functions — the
 * model is intraprocedural by design, see DESIGN.md §18).
 */
struct LockEdge {
    std::string first;
    std::string second;
    std::string file;       ///< Normalized path of the witnessing site.
    size_t first_line = 0;  ///< Where @c first was acquired.
    size_t line = 0;        ///< Where @c second was acquired / waited on.
    std::string function;   ///< Enclosing function of the site.
    bool wait = false;      ///< Edge came from CondVar::Wait/WaitFor.
};

/** Everything one file contributes to the cross-file passes. */
struct CxxScan {
    std::vector<IncludeDirective> includes;
    std::vector<EnumDef> enums;
    std::vector<SwitchRecord> switches;
    std::vector<LockEdge> lock_edges;
};

/**
 * Runs the scoped scanner over one file.  @p path must already be
 * normalized (NormalizePath in lint.h); @p code must be the
 * comment-stripped lines of the file (StripComments).
 */
CxxScan ScanCxx(const std::string& path,
                const std::vector<std::string>& code);

}  // namespace spur::lint

#endif  // SPUR_LINT_CXX_SCAN_H_

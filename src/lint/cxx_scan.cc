#include "src/lint/cxx_scan.h"

#include <cctype>
#include <utility>

namespace spur::lint {

// ---------------------------------------------------------------------------
// Line utilities
// ---------------------------------------------------------------------------

std::vector<std::string>
SplitLines(const std::string& content)
{
    std::vector<std::string> lines;
    std::string current;
    for (const char c : content) {
        if (c == '\n') {
            lines.push_back(std::move(current));
            current.clear();
        } else if (c != '\r') {
            current.push_back(c);
        }
    }
    if (!current.empty()) {
        lines.push_back(std::move(current));
    }
    return lines;
}

std::vector<std::string>
StripComments(const std::vector<std::string>& lines)
{
    enum class State : uint8_t { kCode, kString, kChar, kBlockComment };
    State state = State::kCode;
    std::vector<std::string> out;
    out.reserve(lines.size());
    for (const std::string& line : lines) {
        std::string code;
        code.reserve(line.size());
        if (state != State::kBlockComment) {
            state = State::kCode;
        }
        for (size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char next = (i + 1 < line.size()) ? line[i + 1] : '\0';
            switch (state) {
                case State::kCode:
                    if (c == '/' && next == '/') {
                        i = line.size();  // Rest of the line is comment.
                    } else if (c == '/' && next == '*') {
                        state = State::kBlockComment;
                        ++i;
                    } else {
                        if (c == '"') {
                            state = State::kString;
                        } else if (c == '\'') {
                            state = State::kChar;
                        }
                        code.push_back(c);
                    }
                    break;
                case State::kString:
                case State::kChar:
                    code.push_back(c);
                    if (c == '\\' && next != '\0') {
                        code.push_back(next);
                        ++i;
                    } else if ((state == State::kString && c == '"') ||
                               (state == State::kChar && c == '\'')) {
                        state = State::kCode;
                    }
                    break;
                case State::kBlockComment:
                    if (c == '*' && next == '/') {
                        state = State::kCode;
                        ++i;
                    }
                    break;
            }
        }
        out.push_back(std::move(code));
    }
    return out;
}

bool
IsIdentChar(char c)
{
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

bool
HasToken(const std::string& text, const std::string& token, size_t* column)
{
    size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
        if (pos == 0 || !IsIdentChar(text[pos - 1])) {
            if (column != nullptr) {
                *column = pos;
            }
            return true;
        }
        ++pos;
    }
    return false;
}

bool
HasWord(const std::string& text, const std::string& word)
{
    size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
        const size_t after = pos + word.size();
        const bool right_ok =
            after >= text.size() || !IsIdentChar(text[after]);
        if (left_ok && right_ok) {
            return true;
        }
        ++pos;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

namespace {

bool
IsIdentStart(char c)
{
    return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}

bool
IsSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/** Consumes an identifier chain (idents joined by ::) at @p i. */
std::string
LexChain(const std::string& line, size_t* i)
{
    const size_t start = *i;
    size_t pos = *i;
    if (line[pos] == ':') {  // Leading :: of a global-qualified name.
        pos += 2;
    }
    while (pos < line.size() && IsIdentChar(line[pos])) {
        ++pos;
    }
    while (pos + 2 < line.size() && line[pos] == ':' &&
           line[pos + 1] == ':' && IsIdentStart(line[pos + 2])) {
        pos += 2;
        while (pos < line.size() && IsIdentChar(line[pos])) {
            ++pos;
        }
    }
    *i = pos;
    return line.substr(start, pos - start);
}

}  // namespace

std::vector<Token>
Tokenize(const std::vector<std::string>& code)
{
    std::vector<Token> tokens;
    for (size_t li = 0; li < code.size(); ++li) {
        const std::string& line = code[li];
        const size_t line_no = li + 1;
        size_t i = 0;
        while (i < line.size() && IsSpace(line[i])) {
            ++i;
        }
        if (i < line.size() && line[i] == '#') {
            continue;  // Preprocessor; includes are extracted separately.
        }
        while (i < line.size()) {
            const char c = line[i];
            const char next = (i + 1 < line.size()) ? line[i + 1] : '\0';
            if (IsSpace(c)) {
                ++i;
            } else if (IsIdentStart(c)) {
                tokens.push_back({LexChain(line, &i), line_no});
            } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
                const size_t start = i;
                while (i < line.size() &&
                       (IsIdentChar(line[i]) || line[i] == '.' ||
                        (line[i] == '\'' && i + 1 < line.size() &&
                         IsIdentChar(line[i + 1])))) {
                    ++i;
                }
                tokens.push_back({line.substr(start, i - start), line_no});
            } else if (c == '"') {
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        i += 2;
                    } else if (line[i] == '"') {
                        ++i;
                        break;
                    } else {
                        ++i;
                    }
                }
                tokens.push_back({"\"\"", line_no});
            } else if (c == '\'') {
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        i += 2;
                    } else if (line[i] == '\'') {
                        ++i;
                        break;
                    } else {
                        ++i;
                    }
                }
                tokens.push_back({"''", line_no});
            } else if (c == '-' && next == '>') {
                tokens.push_back({"->", line_no});
                i += 2;
            } else if (c == ':' && next == ':') {
                if (i + 2 < line.size() && IsIdentStart(line[i + 2])) {
                    tokens.push_back({LexChain(line, &i), line_no});
                } else {
                    tokens.push_back({"::", line_no});
                    i += 2;
                }
            } else {
                tokens.push_back({std::string(1, c), line_no});
                ++i;
            }
        }
    }
    return tokens;
}

// ---------------------------------------------------------------------------
// Scoped scanner
// ---------------------------------------------------------------------------

namespace {

struct Scope {
    enum class Kind : uint8_t {
        kNamespace,
        kClass,
        kFunction,
        kLambda,
        kBlock,
    };
    Kind kind = Kind::kBlock;
    std::string name;
};

bool
IsKeyword(const std::string& t)
{
    return t == "if" || t == "for" || t == "while" || t == "switch" ||
           t == "catch" || t == "return" || t == "do" || t == "else" ||
           t == "try" || t == "sizeof" || t == "new" || t == "delete" ||
           t == "struct" || t == "class" || t == "public" ||
           t == "private" || t == "protected" || t == "virtual" ||
           t == "final" || t == "override" || t == "const" ||
           t == "constexpr" || t == "static" || t == "inline" ||
           t == "explicit" || t == "noexcept" || t == "template" ||
           t == "typename" || t == "using" || t == "operator";
}

bool
IsIdentToken(const std::string& t)
{
    return !t.empty() &&
           (IsIdentStart(t[0]) || (t.size() > 2 && t[0] == ':'));
}

/** True when tokens[i] == "[" starts a lambda introducer rather than an
 *  array subscript or an [[attribute]]. */
bool
IsLambdaIntroducer(const std::vector<Token>& tokens, size_t i, size_t from)
{
    if (tokens[i].text != "[") {
        return false;
    }
    if (i + 1 < tokens.size() && tokens[i + 1].text == "[") {
        return false;  // [[attribute]]
    }
    if (i == from) {
        return true;
    }
    const std::string& prev = tokens[i - 1].text;
    return !(IsIdentToken(prev) && !IsKeyword(prev)) && prev != ")" &&
           prev != "]" && prev != "}";
}

/**
 * Decides what kind of scope the `{` at @p brace opens by looking at
 * the tokens of its statement, tokens[from..brace).
 */
Scope
ClassifyScope(const std::vector<Token>& tokens, size_t from, size_t brace)
{
    // namespace [name] {
    for (size_t i = from; i < brace; ++i) {
        if (tokens[i].text == "namespace") {
            std::string name;
            if (i + 1 < brace && IsIdentToken(tokens[i + 1].text)) {
                name = tokens[i + 1].text;
            }
            return {Scope::Kind::kNamespace, name};
        }
    }
    // class/struct ... Name [: bases] {   (enums never reach here: the
    // enum collector consumes their bodies before scope classification).
    for (size_t i = from; i < brace; ++i) {
        if (tokens[i].text != "class" && tokens[i].text != "struct") {
            continue;
        }
        std::string name;
        size_t j = i + 1;
        for (; j < brace; ++j) {
            const std::string& t = tokens[j].text;
            if (t == ":") {
                break;  // Base clause; the name came before it.
            }
            if (t == "(") {  // Skip macro arguments, e.g. SPUR_CAPABILITY.
                int depth = 1;
                for (++j; j < brace && depth > 0; ++j) {
                    if (tokens[j].text == "(") {
                        ++depth;
                    } else if (tokens[j].text == ")") {
                        --depth;
                    }
                }
                --j;
                continue;
            }
            if (IsIdentToken(t) && !IsKeyword(t)) {
                name = t;
            }
        }
        if (!name.empty()) {
            return {Scope::Kind::kClass, name};
        }
    }
    // Lambda introducer anywhere in the statement.
    for (size_t i = from; i < brace; ++i) {
        if (IsLambdaIntroducer(tokens, i, from)) {
            return {Scope::Kind::kLambda, "<lambda>"};
        }
    }
    // Function: an identifier immediately before the statement's first
    // '(' (covers out-of-line `ThreadPool::Submit(...)`, constructors
    // with init lists, and TEST(...)-style macros).
    for (size_t i = from; i < brace; ++i) {
        if (tokens[i].text != "(") {
            continue;
        }
        if (i > from && IsIdentToken(tokens[i - 1].text) &&
            !IsKeyword(tokens[i - 1].text)) {
            return {Scope::Kind::kFunction, tokens[i - 1].text};
        }
        break;  // '(' not preceded by a name: control flow or grouping.
    }
    return {Scope::Kind::kBlock, ""};
}

/** Index of the matching ')' for the '(' at @p open, or npos. */
size_t
MatchParen(const std::vector<Token>& tokens, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == "(") {
            ++depth;
        } else if (tokens[i].text == ")") {
            if (--depth == 0) {
                return i;
            }
        }
    }
    return std::string::npos;
}

/** Joins tokens[first..last) into a lock expression ("gate" "." "mutex"
 *  -> "gate.mutex"), dropping a leading '&'. */
std::string
JoinExpr(const std::vector<Token>& tokens, size_t first, size_t last)
{
    std::string expr;
    for (size_t i = first; i < last; ++i) {
        if (expr.empty() && tokens[i].text == "&") {
            continue;
        }
        expr += tokens[i].text;
    }
    return expr;
}

bool
Contains(const std::string& text, const std::string& needle)
{
    return text.find(needle) != std::string::npos;
}

}  // namespace

CxxScan
ScanCxx(const std::string& path, const std::vector<std::string>& code)
{
    CxxScan scan;

    // Includes come straight off the stripped lines: quoted form only.
    for (size_t li = 0; li < code.size(); ++li) {
        size_t pos = code[li].find("#include");
        if (pos == std::string::npos) {
            continue;
        }
        pos = code[li].find('"', pos);
        if (pos == std::string::npos) {
            continue;  // <system> include.
        }
        const size_t end = code[li].find('"', pos + 1);
        if (end == std::string::npos) {
            continue;
        }
        scan.includes.push_back(
            {li + 1, code[li].substr(pos + 1, end - pos - 1)});
    }

    const std::vector<Token> tokens = Tokenize(code);

    std::vector<Scope> scopes;
    struct HeldLock {
        std::string node;
        size_t line = 0;
        size_t scope_depth = 0;  ///< scopes.size() at acquisition.
        size_t context = 0;      ///< Owning function/lambda scope index+1.
    };
    std::vector<HeldLock> held;
    struct ActiveSwitch {
        SwitchRecord record;
        size_t open_depth = 0;  ///< scopes.size() with the body open.
    };
    std::vector<ActiveSwitch> active_switches;
    size_t stmt_start = 0;

    // The innermost function/lambda scope, as index+1 (0 = file scope):
    // locks only interact when they share this context, so a lambda
    // body never orders against its enclosing function.
    const auto current_context = [&]() -> size_t {
        for (size_t i = scopes.size(); i > 0; --i) {
            const Scope::Kind kind = scopes[i - 1].kind;
            if (kind == Scope::Kind::kFunction ||
                kind == Scope::Kind::kLambda) {
                return i;
            }
        }
        return 0;
    };
    const auto function_name = [&]() -> std::string {
        for (size_t i = scopes.size(); i > 0; --i) {
            if (scopes[i - 1].kind == Scope::Kind::kFunction) {
                return scopes[i - 1].name;
            }
        }
        return "<file>";
    };
    const auto class_prefix = [&]() -> std::string {
        for (size_t i = scopes.size(); i > 0; --i) {
            if (scopes[i - 1].kind == Scope::Kind::kClass) {
                return scopes[i - 1].name;
            }
            if (scopes[i - 1].kind == Scope::Kind::kFunction) {
                const std::string& name = scopes[i - 1].name;
                const size_t sep = name.rfind("::");
                if (sep != std::string::npos) {
                    return name.substr(0, sep);
                }
            }
        }
        return "";
    };
    const auto normalize_lock = [&](const std::string& expr) {
        const std::string prefix = class_prefix();
        if (expr.rfind("this->", 0) == 0) {
            const std::string member = expr.substr(6);
            return prefix.empty() ? member : prefix + "::" + member;
        }
        if (Contains(expr, ".") || Contains(expr, "->")) {
            return path + ":" + function_name() + ":" + expr;
        }
        if (Contains(expr, "::")) {
            return expr;  // Already qualified; global by construction.
        }
        if (expr.rfind("g_", 0) == 0) {
            return expr;  // Global naming convention.
        }
        if (!expr.empty() && expr.back() == '_' && !prefix.empty()) {
            return prefix + "::" + expr;  // Member naming convention.
        }
        return path + ":" + function_name() + ":" + expr;
    };
    const auto is_mutex_lock = [](const std::string& t) {
        if (t == "MutexLock" || t == "lock_guard" || t == "unique_lock") {
            return true;
        }
        const auto ends_with = [&](const std::string& suffix) {
            return t.size() > suffix.size() &&
                   t.compare(t.size() - suffix.size(), suffix.size(),
                             suffix) == 0;
        };
        return ends_with("::MutexLock") || ends_with("::lock_guard") ||
               ends_with("::unique_lock");
    };

    for (size_t i = 0; i < tokens.size(); ++i) {
        const std::string& t = tokens[i].text;
        if (t == "{") {
            scopes.push_back(ClassifyScope(tokens, stmt_start, i));
            stmt_start = i + 1;
        } else if (t == "}") {
            if (!scopes.empty()) {
                scopes.pop_back();
            }
            while (!held.empty() &&
                   held.back().scope_depth > scopes.size()) {
                held.pop_back();
            }
            while (!active_switches.empty() &&
                   active_switches.back().open_depth > scopes.size()) {
                scan.switches.push_back(
                    std::move(active_switches.back().record));
                active_switches.pop_back();
            }
            stmt_start = i + 1;
        } else if (t == ";") {
            stmt_start = i + 1;
        } else if (t == "enum") {
            // Consume the whole definition here so its braces never
            // reach the scope stack and `enum class` is never taken
            // for a class.
            size_t j = i + 1;
            const bool scoped =
                j < tokens.size() &&
                (tokens[j].text == "class" || tokens[j].text == "struct");
            if (scoped) {
                ++j;
            }
            while (j < tokens.size() && (tokens[j].text == "[" ||
                                         tokens[j].text == "]")) {
                ++j;  // [[attributes]]
            }
            std::string name;
            if (j < tokens.size() && IsIdentToken(tokens[j].text) &&
                !IsKeyword(tokens[j].text)) {
                name = tokens[j].text;
                ++j;
            }
            while (j < tokens.size() && tokens[j].text != "{" &&
                   tokens[j].text != ";") {
                ++j;  // Underlying type clause.
            }
            if (j >= tokens.size() || tokens[j].text == ";") {
                i = j;  // Opaque declaration (or `enum` used as a type).
                stmt_start = i + 1;
                continue;
            }
            EnumDef def{name, {}, tokens[i].line};
            int depth = 0;
            bool expect_enumerator = true;
            for (; j < tokens.size(); ++j) {
                const std::string& e = tokens[j].text;
                if (e == "{" || e == "(" || e == "[") {
                    ++depth;
                } else if (e == ")" || e == "]") {
                    --depth;
                } else if (e == "}") {
                    if (--depth == 0) {
                        break;
                    }
                } else if (depth == 1) {
                    if (e == ",") {
                        expect_enumerator = true;
                    } else if (expect_enumerator && IsIdentToken(e)) {
                        def.enumerators.push_back(e);
                        expect_enumerator = false;
                    }
                }
            }
            if (scoped && !name.empty() && !def.enumerators.empty()) {
                scan.enums.push_back(std::move(def));
            }
            i = j;
            stmt_start = i + 1;
        } else if (t == "switch") {
            if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") {
                continue;
            }
            const size_t close = MatchParen(tokens, i + 1);
            if (close == std::string::npos ||
                close + 1 >= tokens.size() ||
                tokens[close + 1].text != "{") {
                continue;
            }
            scopes.push_back({Scope::Kind::kBlock, ""});
            active_switches.push_back(
                {SwitchRecord{tokens[i].line, false, true, {}},
                 scopes.size()});
            i = close + 1;
            stmt_start = i + 1;
        } else if (t == "case" && !active_switches.empty()) {
            ActiveSwitch& top = active_switches.back();
            if (i + 1 < tokens.size() &&
                Contains(tokens[i + 1].text, "::")) {
                top.record.labels.push_back(tokens[i + 1].text);
            } else {
                top.record.labels_parsed = false;
            }
        } else if (t == "default" && !active_switches.empty() &&
                   i + 1 < tokens.size() && tokens[i + 1].text == ":") {
            active_switches.back().record.has_default = true;
        } else if (is_mutex_lock(t)) {
            // MutexLock var(expr);  — declarations like MutexLock(Mutex&)
            // have '(' directly after the type and never match.
            size_t j = i + 1;
            if (j < tokens.size() && tokens[j].text == "<") {
                while (j < tokens.size() && tokens[j].text != ">") {
                    ++j;  // lock_guard<Mutex> template arguments.
                }
                ++j;
            }
            if (j >= tokens.size() || !IsIdentToken(tokens[j].text) ||
                j + 1 >= tokens.size() || tokens[j + 1].text != "(") {
                continue;
            }
            const size_t close = MatchParen(tokens, j + 1);
            if (close == std::string::npos) {
                continue;
            }
            const std::string node =
                normalize_lock(JoinExpr(tokens, j + 2, close));
            const size_t context = current_context();
            for (const HeldLock& h : held) {
                if (h.context == context && h.node != node) {
                    scan.lock_edges.push_back({h.node, node, path, h.line,
                                               tokens[i].line,
                                               function_name(), false});
                }
            }
            held.push_back({node, tokens[i].line, scopes.size(), context});
            i = close;
        } else if ((t == "Wait" || t == "WaitFor") &&
                   i + 1 < tokens.size() && tokens[i + 1].text == "(") {
            const size_t close = MatchParen(tokens, i + 1);
            if (close == std::string::npos) {
                continue;
            }
            size_t arg_end = i + 2;
            int depth = 0;
            for (; arg_end < close; ++arg_end) {
                const std::string& e = tokens[arg_end].text;
                if (e == "(" || e == "[" || e == "{") {
                    ++depth;
                } else if (e == ")" || e == "]" || e == "}") {
                    --depth;
                } else if (e == "," && depth == 0) {
                    break;  // WaitFor(mutex, timeout_ms)
                }
            }
            const std::string node =
                normalize_lock(JoinExpr(tokens, i + 2, arg_end));
            const size_t context = current_context();
            for (const HeldLock& h : held) {
                if (h.context == context && h.node != node) {
                    scan.lock_edges.push_back({h.node, node, path, h.line,
                                               tokens[i].line,
                                               function_name(), true});
                }
            }
            i = close;
        }
    }
    // Unterminated switches (malformed input) still get reported facts.
    while (!active_switches.empty()) {
        scan.switches.push_back(std::move(active_switches.back().record));
        active_switches.pop_back();
    }
    return scan;
}

}  // namespace spur::lint

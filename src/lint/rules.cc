/**
 * @file
 * The per-file rules: the table-driven token rules, the structural
 * special rules, and the allow() marker collection.  Cross-file passes
 * live in lint.cc (orchestration), include_graph.cc and lock_order.cc.
 */
#include "src/lint/rules.h"

#include <algorithm>

#include "src/lint/include_graph.h"
#include "src/lint/lock_order.h"

namespace spur::lint {

namespace {

bool
StartsWith(const std::string& text, const std::string& prefix)
{
    return text.rfind(prefix, 0) == 0;
}

bool
EndsWith(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

/** One token-scan rule: forbidden tokens outside whitelisted paths. */
struct TokenRule {
    const char* name;
    const char* summary;
    std::vector<const char*> tokens;
    /// Normalized path prefixes where the tokens are legitimate.
    std::vector<const char*> allowed_prefixes;
    const char* message;
};

const std::vector<TokenRule>&
TokenRules()
{
    // NOTE: this table spells the forbidden tokens out as literals, so
    // src/lint/ itself is exempted from scanning (see RuleExempt).
    static const std::vector<TokenRule> rules = {
        {"no-rand",
         "platform RNG primitives are forbidden; use the seeded spur::Rng",
         {"rand(", "srand(", "random_device", "random_shuffle", "mt19937"},
         {},
         "platform RNG breaks cross-machine reproducibility; use the "
         "seeded spur::Rng (src/common/random.h)"},
        {"no-wallclock",
         "wall-clock reads are confined to the telemetry/cost layer",
         {"time(", "clock(", "system_clock", "steady_clock",
          "high_resolution_clock", "gettimeofday", "clock_gettime",
          "localtime", "gmtime", "strftime", "asctime", "ctime("},
         {"src/sweep/telemetry.", "src/sweep/cost."},
         "wall-clock read outside the telemetry/cost whitelist; results "
         "must depend only on config and seed"},
        {"no-locale",
         "locale-dependent formatting is forbidden",
         {"setlocale", "std::locale", "imbue(", "localeconv"},
         {},
         "locale-dependent formatting; output bytes must be identical on "
         "every machine"},
        {"no-raw-meta-bits",
         "packed cache-line meta bytes are decoded only by the "
         "LineRef/meta accessors in src/cache/cache.h",
         {"meta::kStateMask", "meta::kProtMask", "meta::kProtShift",
          "meta::kPageDirtyBit", "meta::kBlockDirtyBit"},
         {"src/cache/cache."},
         "raw meta-bit constant outside the cache layer; the packed "
         "layout is an implementation detail of src/cache/cache.h — go "
         "through LineRef/ConstLineRef, or justify the site with "
         "spur-lint: allow(no-raw-meta-bits)"},
    };
    return rules;
}

/** True when the per-file text rules do not apply to @p path at all. */
bool
RuleExempt(const std::string& path)
{
    // The lint layer itself names every forbidden token (and the allow
    // marker) in its rule table and its tests; scanning it would only
    // flag the scanner.  The token/scope scan still runs — src/lint's
    // own includes obey the layer manifest like everyone else's.
    return StartsWith(path, "src/lint/") ||
           StartsWith(path, "tests/lint_test.");
}

bool
PathAllowed(const std::string& path,
            const std::vector<const char*>& prefixes)
{
    for (const char* prefix : prefixes) {
        if (StartsWith(path, prefix)) {
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Special rules
// ---------------------------------------------------------------------------

constexpr char kUnorderedRule[] = "no-unordered-output";
constexpr const char* kSchemaRule = kSchemaVersionRule;
constexpr const char* kSchemaHome = kSchemaVersionHome;
constexpr char kSessionRule[] = "bench-session";
constexpr char kHotPathRule[] = "no-virtual-in-hot-path";

/** Marker comment opting a file into the hot-path rule. */
constexpr char kHotPathMarker[] = "spur:hot-path";

/** True when any RAW line carries the hot-path marker (it lives in a
 *  comment, which StripComments would remove). */
bool
HasHotPathMarker(const std::vector<std::string>& raw_lines)
{
    for (const std::string& line : raw_lines) {
        if (line.find(kHotPathMarker) != std::string::npos) {
            return true;
        }
    }
    return false;
}

/** Headers whose inclusion marks a file as feeding JSON/table output. */
const std::vector<const char*>&
OutputHeaders()
{
    static const std::vector<const char*> headers = {
        "src/stats/run_record.h",
        "src/common/table.h",
        "src/runner/session.h",
        "src/sweep/",
    };
    return headers;
}

/** True when @p path / @p code feeds JSON or table output. */
bool
FeedsOutput(const std::string& path, const std::vector<std::string>& code)
{
    if (StartsWith(path, "src/stats/") || StartsWith(path, "src/sweep/") ||
        StartsWith(path, "tools/")) {
        return true;
    }
    for (const std::string& line : code) {
        if (line.find("#include") == std::string::npos) {
            continue;
        }
        for (const char* header : OutputHeaders()) {
            if (line.find(header) != std::string::npos) {
                return true;
            }
        }
    }
    return false;
}

/**
 * True when @p code holds a kSchemaVersion *definition* (the token
 * followed by a single '='), as opposed to a use of the constant.
 */
bool
IsSchemaVersionDefinition(const std::string& code)
{
    size_t pos = 0;
    const std::string token = "kSchemaVersion";
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool boundary = pos == 0 || !IsIdentChar(code[pos - 1]);
        size_t after = pos + token.size();
        while (after < code.size() &&
               (code[after] == ' ' || code[after] == '\t')) {
            ++after;
        }
        if (boundary && after < code.size() && code[after] == '=' &&
            (after + 1 >= code.size() || code[after + 1] != '=')) {
            return true;
        }
        ++pos;
    }
    return false;
}

/** Files allowed to spell the "schema_version" JSON key literal. */
const std::vector<const char*>&
SchemaLiteralWhitelist()
{
    static const std::vector<const char*> allowed = {
        "src/stats/run_record.cc",  // The writer.
        "src/sweep/merge.cc",       // The parser/validator.
        "src/sweep/stream.cc",      // The stream trailer writer/reader.
        "tests/",                   // Round-trip and golden tests.
    };
    return allowed;
}

// ---------------------------------------------------------------------------
// Allow markers
// ---------------------------------------------------------------------------

constexpr char kAllowPrefix[] = "spur-lint: allow(";

/** Collects every allow() marker of @p raw_lines into @p scan. */
void
CollectAllowSites(const std::vector<std::string>& raw_lines, FileScan* scan)
{
    const std::string prefix = kAllowPrefix;
    for (size_t i = 0; i < raw_lines.size(); ++i) {
        size_t pos = 0;
        while ((pos = raw_lines[i].find(prefix, pos)) !=
               std::string::npos) {
            const size_t start = pos + prefix.size();
            const size_t close = raw_lines[i].find(')', start);
            if (close == std::string::npos) {
                break;
            }
            scan->allows.push_back(
                {scan->path, i + 1,
                 raw_lines[i].substr(start, close - start), false});
            pos = close + 1;
        }
    }
}

}  // namespace

bool
Suppress(FileScan& scan, size_t line, const std::string& rule)
{
    bool suppressed = false;
    for (AllowSite& site : scan.allows) {
        if (site.rule == rule &&
            (site.line == line || site.line + 1 == line)) {
            site.used = true;
            suppressed = true;
        }
    }
    return suppressed;
}

std::vector<RuleInfo>
Rules()
{
    std::vector<RuleInfo> rules;
    for (const TokenRule& rule : TokenRules()) {
        rules.push_back({rule.name, rule.summary});
    }
    rules.push_back({kUnorderedRule,
                     "no unordered containers in files that feed JSON or "
                     "table output (iteration order is unspecified)"});
    rules.push_back({kSchemaRule,
                     "kSchemaVersion is defined exactly once, in " +
                         std::string(kSchemaHome)});
    rules.push_back({kSessionRule,
                     "every bench main() records through "
                     "runner::BenchSession, not raw stdout"});
    rules.push_back({kHotPathRule,
                     "no virtual members in files marked // spur:hot-path "
                     "(the per-reference path is devirtualized)"});
    rules.push_back({kLayeringRule, kLayeringSummary});
    rules.push_back({kLockOrderRule, kLockOrderSummary});
    rules.push_back({kExhaustiveSwitchRule,
                     "a defaultless switch over a scoped enum names every "
                     "enumerator, even in headers and dead configurations "
                     "the compiler never checks"});
    rules.push_back({kDeadAllowRule,
                     "every spur-lint: allow(...) marker suppresses a "
                     "finding; stale markers are deleted, not collected"});
    rules.push_back({kAllowBudgetRule,
                     "each rule has a tree-wide budget of live "
                     "suppression sites; beyond it, widen the rule's "
                     "whitelist instead of adding markers"});
    return rules;
}

size_t
RuleBudget(const std::string& rule)
{
    // Budgets match the real tree's audited inventory plus zero slack:
    // a new suppression site is a conscious, reviewed decision.
    if (rule == "no-raw-meta-bits") {
        return 3;  // The DMA/page-out fast paths in src/core/system.cc.
    }
    return 2;
}

FileScan
ScanSourceFile(const std::string& path, const std::string& content)
{
    FileScan scan;
    scan.path = path;
    const std::vector<std::string> raw = SplitLines(content);
    const std::vector<std::string> code = StripComments(raw);

    const bool exempt = RuleExempt(path);
    if (!exempt) {
        CollectAllowSites(raw, &scan);
    }

    // The token/scope scan runs for every file, exempt or not: layer
    // reach, lock edges and enum facts are architecture, not style.
    scan.cxx = ScanCxx(path, code);

    scan.is_schema_home = path == kSchemaHome;
    if (exempt) {
        return scan;
    }

    // Token rules.
    for (const TokenRule& rule : TokenRules()) {
        if (PathAllowed(path, rule.allowed_prefixes)) {
            continue;
        }
        for (size_t i = 0; i < code.size(); ++i) {
            for (const char* token : rule.tokens) {
                if (!HasToken(code[i], token)) {
                    continue;
                }
                if (Suppress(scan, i + 1, rule.name)) {
                    break;
                }
                scan.violations.push_back(
                    {path, i + 1, rule.name,
                     std::string("'") + token + "': " + rule.message});
                break;  // One finding per rule per line.
            }
        }
    }

    // no-unordered-output.
    if (FeedsOutput(path, code)) {
        for (size_t i = 0; i < code.size(); ++i) {
            if (!HasToken(code[i], "unordered_map") &&
                !HasToken(code[i], "unordered_set")) {
                continue;
            }
            if (Suppress(scan, i + 1, kUnorderedRule)) {
                continue;
            }
            scan.violations.push_back(
                {path, i + 1, kUnorderedRule,
                 "unordered container in output-feeding code; "
                 "iteration order is unspecified, so JSON/table bytes "
                 "would vary by platform — use std::map or a sorted "
                 "vector"});
        }
    }

    // schema-version-once (per-file part; the missing-definition check
    // is tree-level and lives in lint.cc).
    for (size_t i = 0; i < code.size(); ++i) {
        if (IsSchemaVersionDefinition(code[i])) {
            if (scan.is_schema_home) {
                ++scan.schema_definitions;
                if (scan.schema_definitions > 1 &&
                    !Suppress(scan, i + 1, kSchemaRule)) {
                    scan.violations.push_back(
                        {path, i + 1, kSchemaRule,
                         "duplicate kSchemaVersion definition; the "
                         "schema version must have exactly one "
                         "definition site"});
                }
            } else if (!Suppress(scan, i + 1, kSchemaRule)) {
                scan.violations.push_back(
                    {path, i + 1, kSchemaRule,
                     std::string("kSchemaVersion defined outside ") +
                         kSchemaHome +
                         "; a second definition site lets the writer "
                         "and validator drift apart"});
            }
        }
        if (code[i].find("\"schema_version\"") != std::string::npos &&
            !PathAllowed(path, SchemaLiteralWhitelist()) &&
            !Suppress(scan, i + 1, kSchemaRule)) {
            scan.violations.push_back(
                {path, i + 1, kSchemaRule,
                 "\"schema_version\" key spelled outside the "
                 "writer/parser; route document headers through "
                 "stats::JsonWriter and sweep::ParseSweepDocument"});
        }
    }

    // no-virtual-in-hot-path: files that opt in with the marker
    // comment went through devirtualization (compile-time policy
    // templates, member-fn-pointer dispatch); a virtual member
    // reintroduced there silently re-inserts an indirect call into
    // the per-reference loop.
    if (HasHotPathMarker(raw)) {
        for (size_t i = 0; i < code.size(); ++i) {
            if (!HasWord(code[i], "virtual")) {
                continue;
            }
            if (Suppress(scan, i + 1, kHotPathRule)) {
                continue;
            }
            scan.violations.push_back(
                {path, i + 1, kHotPathRule,
                 "'virtual' in a file marked // spur:hot-path; the "
                 "hot path is devirtualized (compile-time policy "
                 "templates, DESIGN.md §15) — dispatch statically, "
                 "move the type out of the marked file, or justify "
                 "the site with spur-lint: allow(...)"});
        }
    }

    // bench-session.
    if (StartsWith(path, "bench/") && EndsWith(path, ".cc")) {
        bool uses_session = false;
        for (const std::string& line : code) {
            if (HasToken(line, "BenchSession")) {
                uses_session = true;
                break;
            }
        }
        if (!uses_session) {
            for (size_t i = 0; i < code.size(); ++i) {
                if (!HasToken(code[i], "main(")) {
                    continue;
                }
                if (Suppress(scan, i + 1, kSessionRule)) {
                    continue;
                }
                scan.violations.push_back(
                    {path, i + 1, kSessionRule,
                     "bench defines main() without recording through "
                     "runner::BenchSession (src/runner/session.h); "
                     "raw-stdout benches are invisible to --json, "
                     "--shard and spur_sweep"});
            }
        }
    }

    return scan;
}

}  // namespace spur::lint

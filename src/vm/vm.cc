#include "src/vm/vm.h"

#include <algorithm>
#include <string>

#include "src/common/log.h"

namespace spur::vm {

namespace {

/** Clamp-derived watermark counts from the configured fractions. */
uint32_t
WatermarkFrames(double fraction, uint32_t pageable, uint32_t minimum)
{
    const auto frames =
        static_cast<uint32_t>(fraction * static_cast<double>(pageable));
    return std::max(frames, minimum);
}

}  // namespace

VirtualMemory::VirtualMemory(const sim::MachineConfig& config,
                             pt::PageTable& table,
                             cache::PageFlusher& flusher,
                             sim::EventCounts& events,
                             sim::TimingModel& timing)
    : config_(config),
      table_(table),
      flusher_(flusher),
      events_(events),
      timing_(timing),
      frames_(static_cast<uint32_t>(config.NumFrames()),
              config.wired_frames),
      low_water_(WatermarkFrames(config.daemon_low_frac,
                                 frames_.NumPageable(), 4)),
      high_water_(WatermarkFrames(config.daemon_high_frac,
                                  frames_.NumPageable(), 8)),
      page_shift_(config.PageShift())
{
    if (high_water_ <= low_water_) {
        high_water_ = low_water_ + 4;
    }
    // Start the hands a quarter-sweep apart: pages get that much grace
    // between the clear and the reclaim test.
    back_hand_ = frames_.FirstPageable();
    const uint32_t gap = std::max<uint32_t>(frames_.NumPageable() / 4, 1);
    front_hand_ = frames_.FirstPageable() +
                  (gap % std::max<uint32_t>(frames_.NumPageable(), 1));
}

void
VirtualMemory::SetPolicies(policy::DirtyPolicy* dirty, policy::RefPolicy* ref)
{
    dirty_policy_ = dirty;
    ref_policy_ = ref;
}

void
VirtualMemory::MapRegion(GlobalVpn start, uint64_t pages, PageKind kind)
{
    regions_.Add(start, pages, kind);
}

void
VirtualMemory::UnmapRegion(GlobalVpn start)
{
    const Region region = regions_.Remove(start);
    for (GlobalVpn vpn = region.start; vpn < region.end; ++vpn) {
        pt::Pte* pte = table_.FindMutable(vpn);
        if (pte == nullptr || !pte->valid()) {
            store_.Discard(vpn);
            continue;
        }
        // Exit-time teardown: flush (virtual-cache hygiene), free the
        // frame, forget the swap copy.  Not a replacement, so none of the
        // Table 3.5 accounting applies.
        FlushPageForReclaim(vpn);
        const FrameNum frame = pte->pfn();
        frames_.Unbind(frame);
        frames_.Free(frame);
        *pte = pt::Pte{};
        store_.Discard(vpn);
        timing_.Charge(sim::TimeBucket::kKernel, config_.t_daemon_page);
    }
}

pt::Pte&
VirtualMemory::HandlePageFault(GlobalAddr addr)
{
    if (dirty_policy_ == nullptr || ref_policy_ == nullptr) {
        Panic("VirtualMemory: policies not installed");
    }
    const GlobalVpn vpn = addr >> page_shift_;
    const Region* region = regions_.Find(vpn);
    if (region == nullptr) {
        Panic("VirtualMemory: fault on unmapped page " + std::to_string(vpn));
    }

    events_.Add(sim::Event::kPageFault);

    // Keep the free list healthy before taking a frame.
    if (frames_.NumFree() <= low_water_) {
        SweepToTarget(high_water_);
    }
    const FrameNum frame = frames_.Allocate();
    if (frame == kInvalidFrame) {
        Fatal("VirtualMemory: out of frames even after daemon sweep "
              "(memory too small for the workload's pinned minimum)");
    }

    pt::Pte& pte = table_.Ensure(vpn);
    const bool writable = IsWritable(region->kind);
    pte.set_pfn(frame);
    pte.set_valid(true);
    pte.set_referenced(true);  // The faulting access references it.
    pte.set_cacheable(true);
    pte.set_coherent(true);
    pte.set_dirty(false);
    pte.set_soft_dirty(false);
    pte.set_writable_intent(writable);
    pte.set_protection(writable
                           ? dirty_policy_->ResidentProtection(true)
                           : Protection::kReadOnly);

    if (IsZeroFill(region->kind) && !store_.HasCopy(vpn)) {
        // Fresh anonymous page: materialize zeroes, no I/O.
        events_.Add(sim::Event::kZeroFill);
        pte.set_zfod_clean(true);
        timing_.Charge(sim::TimeBucket::kFault, config_.t_pagefault_sw);
        timing_.Charge(sim::TimeBucket::kKernel, config_.t_zero_fill);
    } else {
        // Content exists on the file server or in swap: blocking page-in.
        events_.Add(sim::Event::kPageIn);
        store_.PageIn(vpn);
        pte.set_zfod_clean(false);
        timing_.Charge(sim::TimeBucket::kFault, config_.t_pagefault_sw);
        timing_.Charge(sim::TimeBucket::kPagingIo, config_.PageInCycles());
    }

    frames_.Bind(frame, vpn);
    return pte;
}

void
VirtualMemory::SweepToTarget(uint32_t target)
{
    events_.Add(sim::Event::kDaemonSweep);
    const uint64_t pageable = frames_.NumPageable();
    // Two full revolutions give every page one clear-then-test cycle; if
    // the free list is still short after that, force-reclaim.
    const uint64_t max_steps = 2 * pageable;
    uint64_t steps = 0;
    while (frames_.NumFree() < target && steps < max_steps) {
        front_hand_ = Advance(front_hand_);
        back_hand_ = Advance(back_hand_);
        ++steps;
        timing_.Charge(sim::TimeBucket::kKernel, config_.t_daemon_page);

        // Front hand: clear the reference bit.
        const GlobalVpn front_vpn = frames_.VpnOf(front_hand_);
        if (front_vpn != mem::kNoVpn) {
            pt::Pte* pte = table_.FindMutable(front_vpn);
            if (pte != nullptr && pte->valid()) {
                const policy::RefCost cost = ref_policy_->ClearRefBit(
                    *pte, static_cast<GlobalAddr>(front_vpn) << page_shift_,
                    events_);
                timing_.Charge(sim::TimeBucket::kKernel, cost.kernel_cycles);
                timing_.Charge(sim::TimeBucket::kFlush, cost.flush_cycles);
            }
        }

        // Back hand: reclaim if still unreferenced.
        TryReclaim(back_hand_, /*force=*/false);
    }
    // Desperation pass: take pages in sweep order regardless of use.
    while (frames_.NumFree() < target && steps < 3 * pageable) {
        back_hand_ = Advance(back_hand_);
        ++steps;
        timing_.Charge(sim::TimeBucket::kKernel, config_.t_daemon_page);
        TryReclaim(back_hand_, /*force=*/true);
    }
}

FrameNum
VirtualMemory::Advance(FrameNum hand) const
{
    ++hand;
    if (hand >= frames_.NumTotal()) {
        hand = frames_.FirstPageable();
    }
    return hand;
}

bool
VirtualMemory::TryReclaim(FrameNum frame, bool force)
{
    const GlobalVpn vpn = frames_.VpnOf(frame);
    if (vpn == mem::kNoVpn) {
        return false;
    }
    pt::Pte* pte = table_.FindMutable(vpn);
    if (pte == nullptr || !pte->valid()) {
        Panic("VirtualMemory: bound frame with invalid PTE");
    }
    if (!force && ref_policy_->ReadRefBit(*pte)) {
        return false;
    }

    // The cache is virtually tagged: purge the page's blocks before the
    // frame can be reused.
    FlushPageForReclaim(vpn);

    const bool writable = pte->writable_intent();
    const bool modified = dirty_policy_->IsPageDirty(*pte);
    // Sprite always writes a zero-fill page to swap on first replacement,
    // even when the program never touched it (paper footnote 4).
    const bool must_write = modified || pte->zfod_clean();

    if (writable) {
        if (must_write) {
            events_.Add(sim::Event::kPageoutWritableModified);
            events_.Add(sim::Event::kPageOutDirty);
            store_.PageOut(vpn);
            timing_.Charge(sim::TimeBucket::kKernel, config_.t_pageout_sw);
        } else {
            events_.Add(sim::Event::kPageoutWritableNotModified);
            events_.Add(sim::Event::kPageReclaimClean);
        }
    } else {
        events_.Add(sim::Event::kPageReclaimClean);
    }

    frames_.Unbind(frame);
    frames_.Free(frame);
    *pte = pt::Pte{};
    return true;
}

void
VirtualMemory::FlushPageForReclaim(GlobalVpn vpn)
{
    const GlobalAddr page_addr = static_cast<GlobalAddr>(vpn) << page_shift_;
    const cache::FlushResult result =
        flusher_.FlushPageChecked(page_addr);
    events_.Add(sim::Event::kPageFlush);
    events_.Add(sim::Event::kBlockFlush, result.blocks_flushed);
    events_.Add(sim::Event::kWriteback, result.writebacks);
    timing_.Charge(sim::TimeBucket::kFlush,
                   config_.t_flush_page * flusher_.NumFlushTargets());
    timing_.Charge(sim::TimeBucket::kMissStall,
                   static_cast<Cycles>(result.writebacks) *
                       config_.BlockFetchCycles());
}

}  // namespace spur::vm

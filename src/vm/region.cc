#include "src/vm/region.h"

#include <string>

#include "src/common/log.h"

namespace spur::vm {

const char*
ToString(PageKind kind)
{
    switch (kind) {
      case PageKind::kCode: return "code";
      case PageKind::kData: return "data";
      case PageKind::kHeap: return "heap";
      case PageKind::kStack: return "stack";
      case PageKind::kFileCache: return "filecache";
    }
    return "?";
}

void
RegionMap::Add(GlobalVpn start, uint64_t pages, PageKind kind)
{
    if (pages == 0) {
        Fatal("RegionMap: empty region");
    }
    const GlobalVpn end = start + pages;
    // Overlap check against the neighbour below and above.
    auto it = regions_.upper_bound(start);
    if (it != regions_.begin()) {
        auto below = std::prev(it);
        if (below->second.end > start) {
            Fatal("RegionMap: region overlaps an existing one");
        }
    }
    if (it != regions_.end() && it->second.start < end) {
        Fatal("RegionMap: region overlaps an existing one");
    }
    regions_.emplace(start, Region{start, end, kind});
}

Region
RegionMap::Remove(GlobalVpn start)
{
    auto it = regions_.find(start);
    if (it == regions_.end()) {
        Fatal("RegionMap: removing unknown region at page " +
              std::to_string(start));
    }
    const Region region = it->second;
    regions_.erase(it);
    return region;
}

const Region*
RegionMap::Find(GlobalVpn vpn) const
{
    auto it = regions_.upper_bound(vpn);
    if (it == regions_.begin()) {
        return nullptr;
    }
    --it;
    return it->second.Contains(vpn) ? &it->second : nullptr;
}

}  // namespace spur::vm

/**
 * @file
 * Address-space regions, the VM's map of what a global page *is*.
 *
 * Sprite segments map onto these kinds:
 *   kCode   read-only text, demand paged from the file server;
 *   kData   initialized read-write data, demand paged from the file
 *           server, written to swap once dirtied;
 *   kFileCache  pages of files being *read* (Sprite reads files through
 *           the kernel file cache, so they are not writable process
 *           pages and never count as potentially modified);
 *   kHeap   dynamically allocated, zero-filled on first touch;
 *   kStack  zero-filled on first touch.
 */
#ifndef SPUR_VM_REGION_H_
#define SPUR_VM_REGION_H_

#include <cstddef>
#include <cstdint>
#include <map>

#include "src/common/types.h"

namespace spur::vm {

/** What backs a page and whether it may be written. */
enum class PageKind : uint8_t {
    kCode,
    kData,
    kHeap,
    kStack,
    kFileCache,
};

/** Returns a short name for a page kind. */
const char* ToString(PageKind kind);

/** True when pages of this kind may be modified. */
constexpr bool
IsWritable(PageKind kind)
{
    return kind != PageKind::kCode && kind != PageKind::kFileCache;
}

/** True when first touch is a zero-fill rather than a file page-in. */
constexpr bool
IsZeroFill(PageKind kind)
{
    return kind == PageKind::kHeap || kind == PageKind::kStack;
}

/** A contiguous run of global pages with one kind. */
struct Region {
    GlobalVpn start = 0;
    GlobalVpn end = 0;  ///< One past the last page.
    PageKind kind = PageKind::kData;

    uint64_t NumPages() const { return end - start; }
    bool Contains(GlobalVpn vpn) const { return vpn >= start && vpn < end; }
};

/** Ordered, non-overlapping registry of live regions. */
class RegionMap
{
  public:
    RegionMap() = default;

    RegionMap(const RegionMap&) = delete;
    RegionMap& operator=(const RegionMap&) = delete;

    /** Registers [start, start+pages); fatal on overlap. */
    void Add(GlobalVpn start, uint64_t pages, PageKind kind);

    /** Removes the region starting at @p start; fatal when absent. */
    Region Remove(GlobalVpn start);

    /** The region containing @p vpn, or nullptr. */
    const Region* Find(GlobalVpn vpn) const;

    /** Number of live regions. */
    size_t NumRegions() const { return regions_.size(); }

  private:
    std::map<GlobalVpn, Region> regions_;  ///< Keyed by start page.
};

}  // namespace spur::vm

#endif  // SPUR_VM_REGION_H_

/**
 * @file
 * The Sprite-like virtual memory system [Nels86]: page-fault handling,
 * zero-fill-on-demand, and a two-hand clock page daemon whose treatment of
 * reference bits is delegated to the pluggable RefPolicy and whose notion
 * of "dirty" is delegated to the pluggable DirtyPolicy.
 *
 * Replacement mechanics:
 *  - When the free list drops below a low watermark the daemon sweeps two
 *    clock hands over the pageable frames.  The front hand clears each
 *    page's reference bit (under the REF policy this also flushes the page
 *    from the virtual cache); the back hand, a fixed gap behind, reclaims
 *    pages whose bit is still clear.
 *  - A reclaimed page is first flushed from the virtual cache (mandatory:
 *    the cache is virtually tagged, so a frame must never be reused while
 *    stale lines remain), then paged out if the dirty policy says it was
 *    modified, else dropped.
 *  - Following Sprite (footnote 4 of the paper), a zero-fill page is
 *    always written to swap on its first replacement even when clean.
 */
#ifndef SPUR_VM_VM_H_
#define SPUR_VM_VM_H_

#include <cstdint>

#include "src/cache/cache.h"
#include "src/cache/flusher.h"
#include "src/common/types.h"
#include "src/mem/backing_store.h"
#include "src/mem/frame_table.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/pt/page_table.h"
#include "src/sim/config.h"
#include "src/sim/events.h"
#include "src/sim/timing.h"
#include "src/vm/region.h"

namespace spur::vm {

/** The virtual memory manager. */
class VirtualMemory
{
  public:
    VirtualMemory(const sim::MachineConfig& config, pt::PageTable& table,
                  cache::PageFlusher& flusher, sim::EventCounts& events,
                  sim::TimingModel& timing);

    VirtualMemory(const VirtualMemory&) = delete;
    VirtualMemory& operator=(const VirtualMemory&) = delete;

    /** Installs the policies; must be called before any fault. */
    void SetPolicies(policy::DirtyPolicy* dirty, policy::RefPolicy* ref);

    /** Declares an address-space region (workload setup). */
    void MapRegion(GlobalVpn start, uint64_t pages, PageKind kind);

    /**
     * Tears down the region at @p start (process exit): frees frames,
     * flushes its pages from the cache, discards swap copies.
     */
    void UnmapRegion(GlobalVpn start);

    /**
     * Makes the page containing @p addr resident (called by the system on
     * an invalid PTE).  Charges fault-handler time, paging I/O and the
     * page daemon's work to the timing model.  Returns the live PTE.
     */
    pt::Pte& HandlePageFault(GlobalAddr addr);

    /** The frame table (for tests and reports). */
    const mem::FrameTable& frames() const { return frames_; }

    /** The backing store (for tests and reports). */
    const mem::BackingStore& store() const { return store_; }

    /** The region registry (for tests). */
    const RegionMap& regions() const { return regions_; }

    /** Low watermark in frames (daemon trigger). */
    uint32_t LowWatermark() const { return low_water_; }

    /** High watermark in frames (daemon target). */
    uint32_t HighWatermark() const { return high_water_; }

    /** Runs one daemon sweep now regardless of watermarks (tests). */
    void ForceSweep() { SweepToTarget(high_water_); }

  private:
    const sim::MachineConfig& config_;
    pt::PageTable& table_;
    cache::PageFlusher& flusher_;
    sim::EventCounts& events_;
    sim::TimingModel& timing_;
    policy::DirtyPolicy* dirty_policy_ = nullptr;
    policy::RefPolicy* ref_policy_ = nullptr;

    mem::FrameTable frames_;
    mem::BackingStore store_;
    RegionMap regions_;

    uint32_t low_water_;
    uint32_t high_water_;
    FrameNum front_hand_;
    FrameNum back_hand_;
    unsigned page_shift_;

    /** Runs the daemon until @p target frames are free (or gives up). */
    void SweepToTarget(uint32_t target);

    /** Advances @p hand one frame with wraparound. */
    FrameNum Advance(FrameNum hand) const;

    /** Reclaims the page in @p frame; returns false if the frame is
     *  unbound. @p force skips the reference-bit test. */
    bool TryReclaim(FrameNum frame, bool force);

    /** Flushes @p vpn's blocks from the virtual cache, charging time. */
    void FlushPageForReclaim(GlobalVpn vpn);
};

}  // namespace spur::vm

#endif  // SPUR_VM_VM_H_

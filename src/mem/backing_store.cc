#include "src/mem/backing_store.h"

namespace spur::mem {

uint64_t
BackingStore::PageOut(GlobalVpn vpn)
{
    stored_.insert(vpn);
    return ++page_outs_;
}

uint64_t
BackingStore::PageIn(GlobalVpn vpn)
{
    (void)vpn;  // Presence is not required: initial file-system page-ins.
    return ++page_ins_;
}

void
BackingStore::Discard(GlobalVpn vpn)
{
    stored_.erase(vpn);
}

}  // namespace spur::mem

/**
 * @file
 * The paging backing store (swap device plus file system, merged: Sprite
 * pages program text in from the file server and data to/from swap; for
 * the metrics in the paper only the count and kind of paging I/Os matter).
 *
 * Tracks which global pages currently have a backing copy, counts paging
 * I/Os, and prices each operation through a simple disk latency model.
 */
#ifndef SPUR_MEM_BACKING_STORE_H_
#define SPUR_MEM_BACKING_STORE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "src/common/types.h"

namespace spur::mem {

/** Paging I/O accounting and the swap-presence set. */
class BackingStore
{
  public:
    BackingStore() = default;

    BackingStore(const BackingStore&) = delete;
    BackingStore& operator=(const BackingStore&) = delete;

    /**
     * Records a page-out of @p vpn (the page now has a backing copy).
     * Returns the I/O count after the operation.
     */
    uint64_t PageOut(GlobalVpn vpn);

    /**
     * Records a page-in of @p vpn.  It is legal to page in a page with no
     * backing copy: that models initial text/data page-ins from the file
     * system.
     */
    uint64_t PageIn(GlobalVpn vpn);

    /** Forgets the backing copy (address space teardown). */
    void Discard(GlobalVpn vpn);

    /** True when @p vpn has a swap/file copy from an earlier page-out. */
    bool HasCopy(GlobalVpn vpn) const
    {
        return stored_.find(vpn) != stored_.end();
    }

    /** Total page-out I/Os so far. */
    uint64_t NumPageOuts() const { return page_outs_; }

    /** Total page-in I/Os so far. */
    uint64_t NumPageIns() const { return page_ins_; }

    /** Total paging I/Os (ins + outs). */
    uint64_t NumIos() const { return page_ins_ + page_outs_; }

    /** Pages currently resident in the store. */
    size_t NumStored() const { return stored_.size(); }

  private:
    std::unordered_set<GlobalVpn> stored_;
    uint64_t page_ins_ = 0;
    uint64_t page_outs_ = 0;
};

}  // namespace spur::mem

#endif  // SPUR_MEM_BACKING_STORE_H_

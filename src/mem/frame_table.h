/**
 * @file
 * Physical memory frame accounting: a free list plus a reverse map from
 * frame number to the global virtual page occupying it (needed by the
 * page daemon to find replacement candidates and by page-out to know what
 * it is writing).
 */
#ifndef SPUR_MEM_FRAME_TABLE_H_
#define SPUR_MEM_FRAME_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace spur::mem {

/** Sentinel vpn for an unbound frame. */
inline constexpr GlobalVpn kNoVpn = ~GlobalVpn{0};

/** Tracks the allocation state of every physical page frame. */
class FrameTable
{
  public:
    /**
     * @param total_frames  physical frames in the machine.
     * @param wired_frames  frames permanently reserved for the kernel and
     *                      wired page tables; never allocatable.
     */
    FrameTable(uint32_t total_frames, uint32_t wired_frames);

    FrameTable(const FrameTable&) = delete;
    FrameTable& operator=(const FrameTable&) = delete;

    /** Takes a frame from the free list; kInvalidFrame when exhausted. */
    FrameNum Allocate();

    /** Returns @p frame to the free list (must be allocated and unbound). */
    void Free(FrameNum frame);

    /** Associates @p frame with global page @p vpn. */
    void Bind(FrameNum frame, GlobalVpn vpn);

    /** Dissolves the association (before Free()). */
    void Unbind(FrameNum frame);

    /** The page bound to @p frame, or kNoVpn. */
    GlobalVpn VpnOf(FrameNum frame) const { return vpn_of_[frame]; }

    /** Number of frames currently on the free list. */
    uint32_t NumFree() const { return static_cast<uint32_t>(free_.size()); }

    /** Frames available to the VM (total minus wired). */
    uint32_t NumPageable() const { return pageable_; }

    /** Total frames in the machine. */
    uint32_t NumTotal() const { return total_; }

    /** First allocatable frame number (frames below are wired). */
    FrameNum FirstPageable() const { return wired_; }

    /** True when @p frame is currently allocated (audit accessor). */
    bool IsAllocated(FrameNum frame) const
    {
        return frame < total_ && allocated_[frame];
    }

    /** Read-only view of the free list (audit accessor; order is the
     *  allocation stack, back() is handed out next). */
    const std::vector<FrameNum>& FreeList() const { return free_; }

  private:
    // The public API rejects every inconsistent call sequence, so the
    // audit tests need a backdoor to inject the corruption the
    // frame-freelist pass exists to catch (defined in tests/check_test.cc).
    friend struct FrameTableTestAccess;

    uint32_t total_;
    uint32_t wired_;
    uint32_t pageable_;
    std::vector<GlobalVpn> vpn_of_;
    std::vector<FrameNum> free_;
    std::vector<bool> allocated_;
};

}  // namespace spur::mem

#endif  // SPUR_MEM_FRAME_TABLE_H_

#include "src/mem/frame_table.h"

#include <string>

#include "src/common/log.h"

namespace spur::mem {

FrameTable::FrameTable(uint32_t total_frames, uint32_t wired_frames)
    : total_(total_frames),
      wired_(wired_frames),
      pageable_(total_frames > wired_frames ? total_frames - wired_frames
                                            : 0),
      vpn_of_(total_frames, kNoVpn),
      allocated_(total_frames, false)
{
    if (wired_frames >= total_frames) {
        Fatal("FrameTable: wired frames (" + std::to_string(wired_frames) +
              ") exceed total frames (" + std::to_string(total_frames) +
              ")");
    }
    free_.reserve(pageable_);
    // Push high frames first so low frame numbers are allocated first;
    // allocation order is deterministic either way.
    for (FrameNum f = total_frames; f-- > wired_frames;) {
        free_.push_back(f);
    }
}

FrameNum
FrameTable::Allocate()
{
    if (free_.empty()) {
        return kInvalidFrame;
    }
    const FrameNum frame = free_.back();
    free_.pop_back();
    allocated_[frame] = true;
    return frame;
}

void
FrameTable::Free(FrameNum frame)
{
    if (frame >= total_ || !allocated_[frame]) {
        Panic("FrameTable: freeing unallocated frame " +
              std::to_string(frame));
    }
    if (vpn_of_[frame] != kNoVpn) {
        Panic("FrameTable: freeing bound frame " + std::to_string(frame));
    }
    allocated_[frame] = false;
    free_.push_back(frame);
}

void
FrameTable::Bind(FrameNum frame, GlobalVpn vpn)
{
    if (frame >= total_ || !allocated_[frame]) {
        Panic("FrameTable: binding unallocated frame " +
              std::to_string(frame));
    }
    vpn_of_[frame] = vpn;
}

void
FrameTable::Unbind(FrameNum frame)
{
    if (frame >= total_ || !allocated_[frame]) {
        Panic("FrameTable: unbinding unallocated frame " +
              std::to_string(frame));
    }
    vpn_of_[frame] = kNoVpn;
}

}  // namespace spur::mem

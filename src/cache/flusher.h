/**
 * @file
 * The page-flush capability the OS layers depend on, abstracted from the
 * number of caches behind it.
 *
 * On the uniprocessor prototype a page flush touches one cache; on a
 * SPUR multiprocessor the kernel "must flush the page from all the
 * caches" (Section 4.1), which is the main reason true reference bits
 * are so expensive there.  VirtualCache implements this interface for
 * one cache; core::AllCachesFlusher fans a flush out across a machine's
 * caches.
 */
#ifndef SPUR_CACHE_FLUSHER_H_
#define SPUR_CACHE_FLUSHER_H_

#include "src/common/types.h"

namespace spur::cache {

struct FlushResult;

/** Anything that can purge one page's blocks from cache(s). */
class PageFlusher
{
  public:
    /** Tag-checked page flush; aggregated result across targets. */
    virtual FlushResult FlushPageChecked(GlobalAddr addr) = 0;

    /** Number of caches a flush must visit (prices kernel flush time). */
    virtual unsigned NumFlushTargets() const { return 1; }

  protected:
    ~PageFlusher() = default;
};

}  // namespace spur::cache

#endif  // SPUR_CACHE_FLUSHER_H_

/**
 * @file
 * The SPUR backplane: a snooping bus running the Berkeley Ownership
 * protocol [Katz85] across up to twelve processor caches.
 *
 * Protocol summary (states per cache line, see cache.h):
 *   Invalid          no copy;
 *   UnOwned          clean copy, memory is up to date, may be shared;
 *   OwnedShared      dirty copy, this cache owns it, peers may hold
 *                    UnOwned copies; owner must supply data and
 *                    eventually write back;
 *   OwnedExclusive   dirty copy, no other copies exist.
 *
 * Transactions:
 *   Read       a read miss: the owner (if any) supplies the block and
 *              drops to OwnedShared; otherwise memory supplies. The
 *              requester fills UnOwned.
 *   ReadOwned  a write miss: every peer invalidates its copy; a dirty
 *              owner supplies the block. The requester fills
 *              OwnedExclusive.
 *   Upgrade    a write hit on a non-exclusive line: peers invalidate,
 *              the writer promotes to OwnedExclusive. No data moves.
 *
 * Ownership writebacks to memory happen on eviction/flush, exactly as in
 * the uniprocessor model.
 */
#ifndef SPUR_CACHE_BUS_H_
#define SPUR_CACHE_BUS_H_

#include <cstdint>
#include <vector>

#include "src/cache/cache.h"
#include "src/common/types.h"
#include "src/sim/events.h"

namespace spur::cache {

/** Outcome of one bus transaction. */
struct BusResult {
    bool supplied_by_cache = false;  ///< An owner provided the block.
    uint32_t invalidations = 0;      ///< Peer copies invalidated.
};

/** The shared snooping bus. */
class SnoopBus
{
  public:
    explicit SnoopBus(sim::EventCounts& events) : events_(events) {}

    SnoopBus(const SnoopBus&) = delete;
    SnoopBus& operator=(const SnoopBus&) = delete;

    /** Registers a processor's cache; returns its port number. */
    unsigned Attach(VirtualCache* vcache);

    /** Number of attached caches. */
    unsigned NumPorts() const
    {
        return static_cast<unsigned>(caches_.size());
    }

    /** Read-miss transaction for @p addr issued by port @p requester. */
    BusResult Read(GlobalAddr addr, unsigned requester);

    /** Write-miss (read-with-ownership) transaction. */
    BusResult ReadOwned(GlobalAddr addr, unsigned requester);

    /**
     * Ownership upgrade for a line the requester already holds.  Peers'
     * copies are invalidated; the caller promotes its own line.
     */
    BusResult Upgrade(GlobalAddr addr, unsigned requester);

    /** The cache on @p port (for tests). */
    VirtualCache& CacheAt(unsigned port) { return *caches_[port]; }

  private:
    sim::EventCounts& events_;
    std::vector<VirtualCache*> caches_;
};

}  // namespace spur::cache

#endif  // SPUR_CACHE_BUS_H_

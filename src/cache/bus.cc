#include "src/cache/bus.h"

#include "src/common/log.h"

namespace spur::cache {

unsigned
SnoopBus::Attach(VirtualCache* vcache)
{
    if (vcache == nullptr) {
        Panic("SnoopBus: null cache");
    }
    caches_.push_back(vcache);
    return static_cast<unsigned>(caches_.size() - 1);
}

BusResult
SnoopBus::Read(GlobalAddr addr, unsigned requester)
{
    events_.Add(sim::Event::kBusRead);
    BusResult result;
    for (unsigned port = 0; port < caches_.size(); ++port) {
        if (port == requester) {
            continue;
        }
        LineRef line = caches_[port]->Lookup(addr);
        if (!line) {
            continue;
        }
        if (line.state() == CoherencyState::kOwnedExclusive ||
            line.state() == CoherencyState::kOwnedShared) {
            // The owner supplies the block and admits sharers; it keeps
            // ownership (and the writeback responsibility).
            result.supplied_by_cache = true;
            events_.Add(sim::Event::kBusCacheToCache);
            line.set_state(CoherencyState::kOwnedShared);
        }
        // UnOwned peers are unaffected by a read.
    }
    return result;
}

BusResult
SnoopBus::ReadOwned(GlobalAddr addr, unsigned requester)
{
    events_.Add(sim::Event::kBusReadOwned);
    BusResult result;
    for (unsigned port = 0; port < caches_.size(); ++port) {
        if (port == requester) {
            continue;
        }
        LineRef line = caches_[port]->Lookup(addr);
        if (!line) {
            continue;
        }
        if (line.state() == CoherencyState::kOwnedExclusive ||
            line.state() == CoherencyState::kOwnedShared) {
            // The owner supplies the latest data directly to the new
            // owner; no memory update is needed (ownership transfers).
            result.supplied_by_cache = true;
            events_.Add(sim::Event::kBusCacheToCache);
        }
        ++result.invalidations;
        events_.Add(sim::Event::kBusInvalidation);
        line.Invalidate();
    }
    return result;
}

BusResult
SnoopBus::Upgrade(GlobalAddr addr, unsigned requester)
{
    events_.Add(sim::Event::kBusUpgrade);
    BusResult result;
    for (unsigned port = 0; port < caches_.size(); ++port) {
        if (port == requester) {
            continue;
        }
        LineRef line = caches_[port]->Lookup(addr);
        if (!line) {
            continue;
        }
        if (line.state() == CoherencyState::kOwnedExclusive ||
            line.state() == CoherencyState::kOwnedShared) {
            // The requester holds an UnOwned copy while a peer owns the
            // dirty block: ownership (and the latest data) transfers over
            // the bus as part of the upgrade.
            result.supplied_by_cache = true;
            events_.Add(sim::Event::kBusCacheToCache);
        }
        ++result.invalidations;
        events_.Add(sim::Event::kBusInvalidation);
        line.Invalidate();
    }
    return result;
}

}  // namespace spur::cache

/**
 * @file
 * SPUR's 128 KB direct-mapped, virtually-addressed, unified cache.
 *
 * Each cache line carries the Figure 3.2(b) tag fields:
 *   VTag  virtual address tag,
 *   PR    cached copy of the page protection (2 bits),
 *   P     cached copy of the *page* dirty bit,
 *   B     *block* dirty bit (this block was modified while cached),
 *   CS    Berkeley Ownership coherency state (2 bits).
 *
 * PR and P are copied from the PTE when the block is filled and may go
 * stale when the PTE changes afterwards — the central phenomenon studied
 * by the paper.  The cache is a metadata model: block data contents are
 * never simulated because no experiment depends on them.
 *
 * On the uniprocessor configuration the Berkeley Ownership protocol
 * [Katz85] degenerates to: fills enter UnOwned, writes promote to
 * OwnedExclusive (dirty).  The multiprocessor configuration connects
 * several of these caches over the snooping bus in bus.h, which drives
 * the full protocol state machine.
 */
#ifndef SPUR_CACHE_CACHE_H_
#define SPUR_CACHE_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/cache/flusher.h"
#include "src/common/types.h"
#include "src/sim/config.h"

namespace spur::cache {

/** Berkeley Ownership coherency states (2-bit CS field). */
enum class CoherencyState : uint8_t {
    kInvalid = 0,
    kUnOwned = 1,         ///< Clean, possibly shared.
    kOwnedShared = 2,     ///< Dirty, other caches may hold copies.
    kOwnedExclusive = 3,  ///< Dirty, no other cached copies.
};

/** Returns a short name for a coherency state. */
const char* ToString(CoherencyState state);

/** One cache line (block frame) of tag state. */
struct Line {
    uint64_t tag = 0;                ///< VTag: address bits above the index.
    Protection prot = Protection::kNone;  ///< PR: cached page protection.
    CoherencyState state = CoherencyState::kInvalid;  ///< CS.
    bool page_dirty = false;         ///< P: cached copy of page dirty bit.
    bool block_dirty = false;        ///< B: block modified while cached.

    bool valid() const { return state != CoherencyState::kInvalid; }
};

/** Result of evicting a line during Fill(). */
struct Eviction {
    bool happened = false;     ///< A valid line was displaced.
    bool writeback = false;    ///< The displaced line was block-dirty.
    GlobalAddr block_addr = 0; ///< Block address of the displaced line.
};

/** Result of a page flush operation. */
struct FlushResult {
    uint32_t slots_examined = 0;  ///< Cache slots visited.
    uint32_t blocks_flushed = 0;  ///< Valid blocks invalidated.
    uint32_t writebacks = 0;      ///< Of those, dirty blocks written back.
    uint32_t foreign_flushed = 0; ///< Blocks from *other* pages flushed
                                  ///< (indexed flush only).
};

/** The direct-mapped virtual-address cache. */
class VirtualCache : public PageFlusher
{
  public:
    explicit VirtualCache(const sim::MachineConfig& config);

    VirtualCache(const VirtualCache&) = delete;
    VirtualCache& operator=(const VirtualCache&) = delete;

    /** Returns the line holding @p addr, or nullptr on miss. */
    Line* Lookup(GlobalAddr addr)
    {
        Line& line = lines_[IndexOf(addr)];
        return (line.valid() && line.tag == TagOf(addr)) ? &line : nullptr;
    }

    /** Const lookup. */
    const Line* Lookup(GlobalAddr addr) const
    {
        const Line& line = lines_[IndexOf(addr)];
        return (line.valid() && line.tag == TagOf(addr)) ? &line : nullptr;
    }

    /**
     * Installs the block containing @p addr with cached PTE state
     * (@p prot, @p page_dirty).  Fills enter UnOwned (clean).  Any valid
     * line previously in the slot is described in @p eviction.
     */
    Line& Fill(GlobalAddr addr, Protection prot, bool page_dirty,
               Eviction* eviction);

    /**
     * Marks the line as written: sets B, promotes CS to OwnedExclusive.
     * @p line must be a live line returned by Lookup()/Fill().
     */
    static void MarkWritten(Line& line)
    {
        line.block_dirty = true;
        line.state = CoherencyState::kOwnedExclusive;
    }

    /** Invalidates the block containing @p addr if present.
     *  Returns true when a dirty block was written back. */
    bool InvalidateBlock(GlobalAddr addr);

    /**
     * Flushes every block of the page containing @p addr with the
     * *tag-checked* flush (the improved operation the paper assumes for
     * its comparisons): slots whose line belongs to another page are left
     * alone.
     */
    FlushResult FlushPageChecked(GlobalAddr addr) override;

    /**
     * Flushes the page with SPUR's real *indexed* flush, which clears the
     * 128 slots the page maps to regardless of tag, evicting innocent
     * blocks from other pages (counted in foreign_flushed).
     */
    FlushResult FlushPageIndexed(GlobalAddr addr);

    /** Invalidates the whole cache (no writebacks counted). */
    void Reset();

    /** Number of lines. */
    uint64_t NumLines() const { return lines_.size(); }

    /** Number of currently valid lines. */
    uint64_t NumValid() const;

    /** Direct slot access for tests and the page daemon's flush path. */
    const Line& LineAt(uint64_t index) const { return lines_[index]; }

    /** Cache index of @p addr. */
    uint64_t IndexOf(GlobalAddr addr) const
    {
        return (addr >> block_shift_) & index_mask_;
    }

    /** Tag of @p addr (bits above index + block offset). */
    uint64_t TagOf(GlobalAddr addr) const
    {
        return addr >> (block_shift_ + index_bits_);
    }

    /** Reconstructs the block base address of the line at @p index. */
    GlobalAddr BlockAddrOf(uint64_t index, const Line& line) const
    {
        return (line.tag << (block_shift_ + index_bits_)) |
               (index << block_shift_);
    }

    /** Blocks per page (the number of slots a page flush touches). */
    uint32_t BlocksPerPage() const { return blocks_per_page_; }

  private:
    unsigned block_shift_;
    unsigned index_bits_;
    uint64_t index_mask_;
    unsigned page_shift_;
    uint32_t blocks_per_page_;
    std::vector<Line> lines_;

    template <bool kTagChecked>
    FlushResult FlushPageImpl(GlobalAddr addr);
};

}  // namespace spur::cache

#endif  // SPUR_CACHE_CACHE_H_

/**
 * @file
 * SPUR's 128 KB direct-mapped, virtually-addressed, unified cache.
 *
 * Each cache line carries the Figure 3.2(b) tag fields:
 *   VTag  virtual address tag,
 *   PR    cached copy of the page protection (2 bits),
 *   P     cached copy of the *page* dirty bit,
 *   B     *block* dirty bit (this block was modified while cached),
 *   CS    Berkeley Ownership coherency state (2 bits).
 *
 * PR and P are copied from the PTE when the block is filled and may go
 * stale when the PTE changes afterwards — the central phenomenon studied
 * by the paper.  The cache is a metadata model: block data contents are
 * never simulated because no experiment depends on them.
 *
 * Storage is structure-of-arrays: one vector of VTags and one vector of
 * packed per-line metadata bytes holding CS | PR | P | B.  The whole
 * metadata array for the prototype cache is 4 KB, so the per-reference
 * valid/tag check and the page-flush scans run against L1-resident
 * state.  The `Line` struct survives as a value-type snapshot of one
 * line (tests, invariant passes); live lines are reached through the
 * `LineRef` proxy, which preserves Figure 3.2(b) field semantics over
 * the packed byte.
 *
 * On the uniprocessor configuration the Berkeley Ownership protocol
 * [Katz85] degenerates to: fills enter UnOwned, writes promote to
 * OwnedExclusive (dirty).  The multiprocessor configuration connects
 * several of these caches over the snooping bus in bus.h, which drives
 * the full protocol state machine.
 */
// spur:hot-path
#ifndef SPUR_CACHE_CACHE_H_
#define SPUR_CACHE_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/cache/flusher.h"
#include "src/common/types.h"
#include "src/sim/config.h"

namespace spur::cache {

/** Berkeley Ownership coherency states (2-bit CS field). */
enum class CoherencyState : uint8_t {
    kInvalid = 0,
    kUnOwned = 1,         ///< Clean, possibly shared.
    kOwnedShared = 2,     ///< Dirty, other caches may hold copies.
    kOwnedExclusive = 3,  ///< Dirty, no other cached copies.
};

/** Returns a short name for a coherency state. */
const char* ToString(CoherencyState state);

/**
 * One cache line (block frame) of tag state, as a value snapshot.
 * Live lines are stored packed (see LineRef); this struct is the
 * unpacked view used by tests, the invariant passes, and anything that
 * wants to hold line state independent of the cache arrays.
 */
struct Line {
    uint64_t tag = 0;                ///< VTag: address bits above the index.
    Protection prot = Protection::kNone;  ///< PR: cached page protection.
    CoherencyState state = CoherencyState::kInvalid;  ///< CS.
    bool page_dirty = false;         ///< P: cached copy of page dirty bit.
    bool block_dirty = false;        ///< B: block modified while cached.

    bool valid() const { return state != CoherencyState::kInvalid; }
};

/** Packed layout of the per-line metadata byte. */
namespace meta {
inline constexpr uint8_t kStateMask = 0x03;   ///< CS, bits 0-1.
inline constexpr unsigned kProtShift = 2;     ///< PR, bits 2-3.
inline constexpr uint8_t kProtMask = 0x0C;
inline constexpr uint8_t kPageDirtyBit = 0x10;   ///< P, bit 4.
inline constexpr uint8_t kBlockDirtyBit = 0x20;  ///< B, bit 5.

/** Packs a Line's non-tag fields into one byte. */
inline uint8_t
Pack(const Line& line)
{
    return static_cast<uint8_t>(
        (static_cast<uint8_t>(line.state) & kStateMask) |
        ((static_cast<uint8_t>(line.prot) << kProtShift) & kProtMask) |
        (line.page_dirty ? kPageDirtyBit : 0) |
        (line.block_dirty ? kBlockDirtyBit : 0));
}

/** Unpacks a metadata byte (+ tag) back into a Line snapshot. */
inline Line
Unpack(uint64_t tag, uint8_t m)
{
    Line line;
    line.tag = tag;
    line.state = static_cast<CoherencyState>(m & kStateMask);
    line.prot = static_cast<Protection>((m & kProtMask) >> kProtShift);
    line.page_dirty = (m & kPageDirtyBit) != 0;
    line.block_dirty = (m & kBlockDirtyBit) != 0;
    return line;
}
}  // namespace meta

/**
 * Read-only proxy for one live line in the SoA arrays.  Null (falsy)
 * when a lookup missed.  Accessors mirror the Line fields exactly.
 */
class ConstLineRef
{
  public:
    ConstLineRef() = default;
    ConstLineRef(const uint64_t* tag, const uint8_t* m)
        : tag_(tag), meta_(m)
    {
    }

    explicit operator bool() const { return meta_ != nullptr; }

    uint64_t tag() const { return *tag_; }
    CoherencyState state() const
    {
        return static_cast<CoherencyState>(*meta_ & meta::kStateMask);
    }
    Protection prot() const
    {
        return static_cast<Protection>((*meta_ & meta::kProtMask) >>
                                       meta::kProtShift);
    }
    bool page_dirty() const { return (*meta_ & meta::kPageDirtyBit) != 0; }
    bool block_dirty() const { return (*meta_ & meta::kBlockDirtyBit) != 0; }
    bool valid() const { return (*meta_ & meta::kStateMask) != 0; }

    /** Unpacked snapshot of the line. */
    Line Get() const { return meta::Unpack(*tag_, *meta_); }

  protected:
    const uint64_t* tag_ = nullptr;
    const uint8_t* meta_ = nullptr;
};

/** Mutable proxy for one live line (what Lookup()/Fill() hand out). */
class LineRef : public ConstLineRef
{
  public:
    LineRef() = default;
    LineRef(uint64_t* tag, uint8_t* m) : ConstLineRef(tag, m) {}

    void set_tag(uint64_t tag) { *mutable_tag() = tag; }
    void set_state(CoherencyState state)
    {
        *mutable_meta() = static_cast<uint8_t>(
            (*meta_ & ~meta::kStateMask) |
            (static_cast<uint8_t>(state) & meta::kStateMask));
    }
    void set_prot(Protection prot)
    {
        *mutable_meta() = static_cast<uint8_t>(
            (*meta_ & ~meta::kProtMask) |
            ((static_cast<uint8_t>(prot) << meta::kProtShift) &
             meta::kProtMask));
    }
    void set_page_dirty(bool dirty)
    {
        *mutable_meta() = static_cast<uint8_t>(
            dirty ? (*meta_ | meta::kPageDirtyBit)
                  : (*meta_ & ~meta::kPageDirtyBit));
    }
    void set_block_dirty(bool dirty)
    {
        *mutable_meta() = static_cast<uint8_t>(
            dirty ? (*meta_ | meta::kBlockDirtyBit)
                  : (*meta_ & ~meta::kBlockDirtyBit));
    }

    /** Sets B and promotes CS to OwnedExclusive.  OwnedExclusive is both
     *  state bits set, so the whole transition is one OR into the packed
     *  byte (the hardware's write-hit fast path). */
    void MarkWritten()
    {
        *mutable_meta() = static_cast<uint8_t>(
            *meta_ | meta::kBlockDirtyBit |
            static_cast<uint8_t>(CoherencyState::kOwnedExclusive));
    }

    /**
     * MarkWritten() iff @p is_write, as one unconditional
     * read-modify-write (a no-op OR when false).  Batch loops use this
     * so the hit path carries no data-dependent write branch.
     */
    void MarkWrittenIf(bool is_write)
    {
        const uint8_t bits = static_cast<uint8_t>(
            (meta::kBlockDirtyBit |
             static_cast<uint8_t>(CoherencyState::kOwnedExclusive)) &
            -static_cast<int>(is_write));
        *mutable_meta() = static_cast<uint8_t>(*meta_ | bits);
    }

    /** Overwrites the whole line from a snapshot. */
    void Set(const Line& line)
    {
        *mutable_tag() = line.tag;
        *mutable_meta() = meta::Pack(line);
    }

    /** Resets the line to the default (invalid) state, tag included —
     *  the packed equivalent of `line = Line{}`. */
    void Invalidate()
    {
        *mutable_tag() = 0;
        *mutable_meta() = 0;
    }

  private:
    // The base class holds const pointers so ConstLineRef conversion is
    // free; a LineRef is only ever built from mutable storage.
    uint64_t* mutable_tag() { return const_cast<uint64_t*>(tag_); }
    uint8_t* mutable_meta() { return const_cast<uint8_t*>(meta_); }
};

/**
 * Owns storage for one free-standing line and hands out LineRefs to it.
 * For tests and callers that exercised policies against stack-allocated
 * `cache::Line` values under the old array-of-structs layout.
 */
class LineBuf
{
  public:
    LineBuf() = default;
    explicit LineBuf(const Line& line)
        : tag_(line.tag), meta_(meta::Pack(line))
    {
    }

    LineRef ref() { return LineRef(&tag_, &meta_); }
    ConstLineRef cref() const { return ConstLineRef(&tag_, &meta_); }
    Line Get() const { return meta::Unpack(tag_, meta_); }

  private:
    uint64_t tag_ = 0;
    uint8_t meta_ = 0;
};

/** Result of evicting a line during Fill(). */
struct Eviction {
    bool happened = false;     ///< A valid line was displaced.
    bool writeback = false;    ///< The displaced line was block-dirty.
    GlobalAddr block_addr = 0; ///< Block address of the displaced line.
};

/** Result of a page flush operation. */
struct FlushResult {
    uint32_t slots_examined = 0;  ///< Cache slots visited.
    uint32_t blocks_flushed = 0;  ///< Valid blocks invalidated.
    uint32_t writebacks = 0;      ///< Of those, dirty blocks written back.
    uint32_t foreign_flushed = 0; ///< Blocks from *other* pages flushed
                                  ///< (indexed flush only).
};

/** The direct-mapped virtual-address cache. */
class VirtualCache : public PageFlusher
{
  public:
    explicit VirtualCache(const sim::MachineConfig& config);

    VirtualCache(const VirtualCache&) = delete;
    VirtualCache& operator=(const VirtualCache&) = delete;

    /** Returns a ref to the line holding @p addr, or a null ref on miss. */
    LineRef Lookup(GlobalAddr addr)
    {
        const uint64_t index = IndexOf(addr);
        return ((meta_[index] & meta::kStateMask) != 0 &&
                tags_[index] == TagOf(addr))
                   ? LineRef(&tags_[index], &meta_[index])
                   : LineRef();
    }

    /**
     * Lookup with a precomputed slot @p index and expected @p tag.
     * Batch loops use this to overlap the metadata load with the
     * segment-map resolution: when the segment shift sits above the
     * index bits, the index depends only on the process address, so the
     * array accesses can issue before the global tag is known.
     */
    LineRef LookupAt(uint64_t index, uint64_t tag)
    {
        return ((meta_[index] & meta::kStateMask) != 0 &&
                tags_[index] == tag)
                   ? LineRef(&tags_[index], &meta_[index])
                   : LineRef();
    }

    /** Const lookup. */
    ConstLineRef Lookup(GlobalAddr addr) const
    {
        const uint64_t index = IndexOf(addr);
        return ((meta_[index] & meta::kStateMask) != 0 &&
                tags_[index] == TagOf(addr))
                   ? ConstLineRef(&tags_[index], &meta_[index])
                   : ConstLineRef();
    }

    /**
     * Installs the block containing @p addr with cached PTE state
     * (@p prot, @p page_dirty).  Fills enter UnOwned (clean).  Any valid
     * line previously in the slot is described in @p eviction.
     */
    LineRef Fill(GlobalAddr addr, Protection prot, bool page_dirty,
                 Eviction* eviction);

    /**
     * Marks the line as written: sets B, promotes CS to OwnedExclusive.
     * @p line must be a live line returned by Lookup()/Fill().
     */
    static void MarkWritten(LineRef line) { line.MarkWritten(); }

    /** Invalidates the block containing @p addr if present.
     *  Returns true when a dirty block was written back. */
    bool InvalidateBlock(GlobalAddr addr);

    /**
     * Flushes every block of the page containing @p addr with the
     * *tag-checked* flush (the improved operation the paper assumes for
     * its comparisons): slots whose line belongs to another page are left
     * alone.
     */
    FlushResult FlushPageChecked(GlobalAddr addr) override;

    /**
     * Flushes the page with SPUR's real *indexed* flush, which clears the
     * 128 slots the page maps to regardless of tag, evicting innocent
     * blocks from other pages (counted in foreign_flushed).
     */
    FlushResult FlushPageIndexed(GlobalAddr addr);

    /** Invalidates the whole cache (no writebacks counted). */
    void Reset();

    /** Number of lines. */
    uint64_t NumLines() const { return tags_.size(); }

    /** Number of currently valid lines. */
    uint64_t NumValid() const;

    /** Snapshot of the slot at @p index (tests, audit passes, the page
     *  daemon's flush path). */
    Line LineAt(uint64_t index) const
    {
        return meta::Unpack(tags_[index], meta_[index]);
    }

    /** Mutable ref to the slot at @p index (tests and the snoop bus). */
    LineRef SlotAt(uint64_t index)
    {
        return LineRef(&tags_[index], &meta_[index]);
    }

    /** Cache index of @p addr. */
    uint64_t IndexOf(GlobalAddr addr) const
    {
        return (addr >> block_shift_) & index_mask_;
    }

    /** Tag of @p addr (bits above index + block offset). */
    uint64_t TagOf(GlobalAddr addr) const
    {
        return addr >> (block_shift_ + index_bits_);
    }

    /** Reconstructs the block base address of the line at @p index. */
    GlobalAddr BlockAddrOf(uint64_t index, uint64_t tag) const
    {
        return (tag << (block_shift_ + index_bits_)) |
               (index << block_shift_);
    }

    /** Convenience overload for snapshot-holding callers. */
    GlobalAddr BlockAddrOf(uint64_t index, const Line& line) const
    {
        return BlockAddrOf(index, line.tag);
    }

    /** Blocks per page (the number of slots a page flush touches). */
    uint32_t BlocksPerPage() const { return blocks_per_page_; }

    /** log2 of the block size (for callers computing block numbers). */
    unsigned BlockShift() const { return block_shift_; }

    /**
     * Raw SoA view for the batch hot loop.  The metadata store in the
     * write fast path is a byte store, which (char aliasing) would force
     * the compiler to re-load member pointers and geometry from `this`
     * on every loop iteration; callers copy this POD into locals once
     * instead.  The pointers stay valid and stable for the cache's
     * lifetime; Fill()/flush/invalidate mutate array *contents* only.
     */
    struct HotView {
        uint64_t* tags;       ///< tags_.data()
        uint8_t* meta;        ///< meta_.data()
        uint64_t index_mask;  ///< index = (addr >> block_shift) & mask
        unsigned block_shift;
        unsigned tag_shift;   ///< tag = addr >> tag_shift

        /** Same result as VirtualCache::Lookup on the owning cache. */
        LineRef Lookup(uint64_t index, uint64_t tag) const
        {
            return ((meta[index] & meta::kStateMask) != 0 &&
                    tags[index] == tag)
                       ? LineRef(&tags[index], &meta[index])
                       : LineRef();
        }
    };

    /** The hot-loop view (see HotView). */
    HotView hot_view()
    {
        return HotView{tags_.data(), meta_.data(), index_mask_,
                       block_shift_, block_shift_ + index_bits_};
    }

  private:
    unsigned block_shift_;
    unsigned index_bits_;
    uint64_t index_mask_;
    unsigned page_shift_;
    uint32_t blocks_per_page_;
    // Structure-of-arrays line storage: tags_[i] + meta_[i] together are
    // slot i.  Invariant: an invalid slot always has meta_[i] == 0 (its
    // tag is also zeroed on invalidation so snapshots equal Line{}).
    std::vector<uint64_t> tags_;
    std::vector<uint8_t> meta_;

    template <bool kTagChecked>
    FlushResult FlushPageImpl(GlobalAddr addr);
};

}  // namespace spur::cache

#endif  // SPUR_CACHE_CACHE_H_

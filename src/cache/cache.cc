#include "src/cache/cache.h"

#include "src/common/bits.h"

namespace spur::cache {

const char*
ToString(CoherencyState state)
{
    switch (state) {
      case CoherencyState::kInvalid: return "Invalid";
      case CoherencyState::kUnOwned: return "UnOwned";
      case CoherencyState::kOwnedShared: return "OwnedShared";
      case CoherencyState::kOwnedExclusive: return "OwnedExclusive";
    }
    return "?";
}

VirtualCache::VirtualCache(const sim::MachineConfig& config)
    : block_shift_(config.BlockShift()),
      index_bits_(config.IndexBits()),
      index_mask_(config.NumBlocks() - 1),
      page_shift_(config.PageShift()),
      blocks_per_page_(static_cast<uint32_t>(config.BlocksPerPage())),
      lines_(config.NumBlocks())
{
}

Line&
VirtualCache::Fill(GlobalAddr addr, Protection prot, bool page_dirty,
                   Eviction* eviction)
{
    const uint64_t index = IndexOf(addr);
    Line& line = lines_[index];
    if (eviction != nullptr) {
        eviction->happened = line.valid();
        eviction->writeback = line.valid() && line.block_dirty;
        eviction->block_addr =
            line.valid() ? BlockAddrOf(index, line) : 0;
    }
    line.tag = TagOf(addr);
    line.prot = prot;
    line.page_dirty = page_dirty;
    line.block_dirty = false;
    line.state = CoherencyState::kUnOwned;
    return line;
}

bool
VirtualCache::InvalidateBlock(GlobalAddr addr)
{
    Line* line = Lookup(addr);
    if (line == nullptr) {
        return false;
    }
    const bool writeback = line->block_dirty;
    *line = Line{};
    return writeback;
}

template <bool kTagChecked>
FlushResult
VirtualCache::FlushPageImpl(GlobalAddr addr)
{
    FlushResult result;
    const GlobalAddr page_base = AlignDown(addr, uint64_t{1} << page_shift_);
    for (uint32_t i = 0; i < blocks_per_page_; ++i) {
        const GlobalAddr block_addr =
            page_base + (static_cast<GlobalAddr>(i) << block_shift_);
        const uint64_t index = IndexOf(block_addr);
        Line& line = lines_[index];
        ++result.slots_examined;
        if (!line.valid()) {
            continue;
        }
        const bool belongs = line.tag == TagOf(block_addr);
        if (kTagChecked && !belongs) {
            continue;
        }
        if (!belongs) {
            ++result.foreign_flushed;
        }
        ++result.blocks_flushed;
        if (line.block_dirty) {
            ++result.writebacks;
        }
        line = Line{};
    }
    return result;
}

FlushResult
VirtualCache::FlushPageChecked(GlobalAddr addr)
{
    return FlushPageImpl<true>(addr);
}

FlushResult
VirtualCache::FlushPageIndexed(GlobalAddr addr)
{
    return FlushPageImpl<false>(addr);
}

void
VirtualCache::Reset()
{
    for (Line& line : lines_) {
        line = Line{};
    }
}

uint64_t
VirtualCache::NumValid() const
{
    uint64_t count = 0;
    for (const Line& line : lines_) {
        count += line.valid() ? 1 : 0;
    }
    return count;
}

}  // namespace spur::cache

#include "src/cache/cache.h"

#include <algorithm>

#include "src/common/bits.h"

namespace spur::cache {

const char*
ToString(CoherencyState state)
{
    switch (state) {
      case CoherencyState::kInvalid: return "Invalid";
      case CoherencyState::kUnOwned: return "UnOwned";
      case CoherencyState::kOwnedShared: return "OwnedShared";
      case CoherencyState::kOwnedExclusive: return "OwnedExclusive";
    }
    return "?";
}

VirtualCache::VirtualCache(const sim::MachineConfig& config)
    : block_shift_(config.BlockShift()),
      index_bits_(config.IndexBits()),
      index_mask_(config.NumBlocks() - 1),
      page_shift_(config.PageShift()),
      blocks_per_page_(static_cast<uint32_t>(config.BlocksPerPage())),
      tags_(config.NumBlocks(), 0),
      meta_(config.NumBlocks(), 0)
{
}

LineRef
VirtualCache::Fill(GlobalAddr addr, Protection prot, bool page_dirty,
                   Eviction* eviction)
{
    const uint64_t index = IndexOf(addr);
    const uint8_t old_meta = meta_[index];
    if (eviction != nullptr) {
        const bool valid = (old_meta & meta::kStateMask) != 0;
        eviction->happened = valid;
        eviction->writeback =
            valid && (old_meta & meta::kBlockDirtyBit) != 0;
        eviction->block_addr = valid ? BlockAddrOf(index, tags_[index]) : 0;
    }
    tags_[index] = TagOf(addr);
    meta_[index] = static_cast<uint8_t>(
        static_cast<uint8_t>(CoherencyState::kUnOwned) |
        ((static_cast<uint8_t>(prot) << meta::kProtShift) &
         meta::kProtMask) |
        (page_dirty ? meta::kPageDirtyBit : 0));
    return LineRef(&tags_[index], &meta_[index]);
}

bool
VirtualCache::InvalidateBlock(GlobalAddr addr)
{
    LineRef line = Lookup(addr);
    if (!line) {
        return false;
    }
    const bool writeback = line.block_dirty();
    line.Invalidate();
    return writeback;
}

template <bool kTagChecked>
FlushResult
VirtualCache::FlushPageImpl(GlobalAddr addr)
{
    FlushResult result;
    const GlobalAddr page_base = AlignDown(addr, uint64_t{1} << page_shift_);
    if (blocks_per_page_ > tags_.size()) {
        // A page larger than the whole cache: its blocks alias slots, so
        // walk block addresses individually (the pre-SoA behaviour).
        for (uint32_t i = 0; i < blocks_per_page_; ++i) {
            const GlobalAddr block_addr =
                page_base + (static_cast<GlobalAddr>(i) << block_shift_);
            const uint64_t index = IndexOf(block_addr);
            ++result.slots_examined;
            if ((meta_[index] & meta::kStateMask) == 0) {
                continue;
            }
            const bool belongs = tags_[index] == TagOf(block_addr);
            if (kTagChecked && !belongs) {
                continue;
            }
            if (!belongs) {
                ++result.foreign_flushed;
            }
            ++result.blocks_flushed;
            if ((meta_[index] & meta::kBlockDirtyBit) != 0) {
                ++result.writebacks;
            }
            meta_[index] = 0;
            tags_[index] = 0;
        }
        return result;
    }
    // The page is page-aligned and no larger than the cache, so its
    // blocks occupy one contiguous, non-wrapping run of slots and share a
    // single tag value: the flush is a linear scan of the metadata bytes.
    const uint64_t first = IndexOf(page_base);
    const uint64_t page_tag = TagOf(page_base);
    for (uint32_t i = 0; i < blocks_per_page_; ++i) {
        const uint64_t index = first + i;
        ++result.slots_examined;
        if ((meta_[index] & meta::kStateMask) == 0) {
            continue;
        }
        const bool belongs = tags_[index] == page_tag;
        if (kTagChecked && !belongs) {
            continue;
        }
        if (!belongs) {
            ++result.foreign_flushed;
        }
        ++result.blocks_flushed;
        if ((meta_[index] & meta::kBlockDirtyBit) != 0) {
            ++result.writebacks;
        }
        meta_[index] = 0;
        tags_[index] = 0;
    }
    return result;
}

FlushResult
VirtualCache::FlushPageChecked(GlobalAddr addr)
{
    return FlushPageImpl<true>(addr);
}

FlushResult
VirtualCache::FlushPageIndexed(GlobalAddr addr)
{
    return FlushPageImpl<false>(addr);
}

void
VirtualCache::Reset()
{
    std::fill(tags_.begin(), tags_.end(), 0);
    std::fill(meta_.begin(), meta_.end(), 0);
}

uint64_t
VirtualCache::NumValid() const
{
    uint64_t count = 0;
    for (const uint8_t m : meta_) {
        count += (m & meta::kStateMask) != 0 ? 1 : 0;
    }
    return count;
}

}  // namespace spur::cache

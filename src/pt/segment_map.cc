#include "src/pt/segment_map.h"

#include <string>

#include "src/common/log.h"

namespace spur::pt {

SegmentMap::SegmentMap() = default;

Pid
SegmentMap::CreateProcess()
{
    const Pid pid = static_cast<Pid>(maps_.size());
    std::array<uint32_t, kSegmentsPerProcess> regs{};
    for (auto& reg : regs) {
        reg = AllocateGlobalSegment();
    }
    maps_.push_back(regs);
    alive_.push_back(true);
    ++live_;
    return pid;
}

void
SegmentMap::DestroyProcess(Pid pid)
{
    CheckPid(pid);
    if (!alive_[pid]) {
        Panic("SegmentMap: double destroy of pid " + std::to_string(pid));
    }
    alive_[pid] = false;
    --live_;
}

void
SegmentMap::ShareSegment(Pid pid, unsigned reg, Pid other_pid,
                         unsigned other_reg)
{
    CheckPid(pid);
    CheckPid(other_pid);
    if (reg >= kSegmentsPerProcess || other_reg >= kSegmentsPerProcess) {
        Fatal("SegmentMap: segment register index must be 0..3");
    }
    maps_[pid][reg] = maps_[other_pid][other_reg];
}

uint32_t
SegmentMap::SegmentOf(Pid pid, unsigned reg) const
{
    CheckPid(pid);
    if (reg >= kSegmentsPerProcess) {
        Fatal("SegmentMap: segment register index must be 0..3");
    }
    return maps_[pid][reg];
}

void
SegmentMap::CheckPid(Pid pid) const
{
    if (pid >= maps_.size()) {
        Fatal("SegmentMap: unknown pid " + std::to_string(pid));
    }
}

}  // namespace spur::pt

/**
 * @file
 * SPUR's segment mapping from process virtual addresses to the shared
 * global virtual address space.
 *
 * The top two bits of a 32-bit process address select one of four segment
 * registers; each register names a 1 GB *global* segment.  Processes that
 * share memory are given the same global segment, so a physical page is
 * only ever cached under one global virtual address — this is how SPUR's
 * operating system prevents virtual-address synonyms [Hill86].
 */
#ifndef SPUR_PT_SEGMENT_MAP_H_
#define SPUR_PT_SEGMENT_MAP_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace spur::pt {

/** Bits of a process address below the segment selector. */
inline constexpr unsigned kSegmentShift = 30;

/** Size of one segment in bytes (1 GB). */
inline constexpr uint64_t kSegmentBytes = uint64_t{1} << kSegmentShift;

/** Segment registers per process. */
inline constexpr unsigned kSegmentsPerProcess = 4;

/** Sentinel for an unmapped segment register. */
inline constexpr uint32_t kUnmappedSegment = ~uint32_t{0};

/**
 * Per-process segment registers and the global-segment allocator.
 *
 * Global segment 0 is reserved for the kernel; the page-table segment is
 * assigned at construction time by the page table itself.
 */
class SegmentMap
{
  public:
    SegmentMap();

    SegmentMap(const SegmentMap&) = delete;
    SegmentMap& operator=(const SegmentMap&) = delete;

    /** Registers a process and backs all four registers with fresh
     *  private global segments. Returns the new pid. */
    Pid CreateProcess();

    /** Releases a process's table entry (its segments are not recycled;
     *  the global space is large). */
    void DestroyProcess(Pid pid);

    /**
     * Makes @p pid's segment register @p reg point at the same global
     * segment as @p other_pid's register @p other_reg (shared memory).
     */
    void ShareSegment(Pid pid, unsigned reg, Pid other_pid,
                      unsigned other_reg);

    /** Translates a process virtual address to a global one. */
    GlobalAddr ToGlobal(Pid pid, ProcessAddr addr) const
    {
        const unsigned reg = addr >> kSegmentShift;
        const uint32_t seg = maps_[pid][reg];
        return (static_cast<GlobalAddr>(seg) << kSegmentShift) |
               (addr & (kSegmentBytes - 1));
    }

    /** The global segment behind @p pid's register @p reg. */
    uint32_t SegmentOf(Pid pid, unsigned reg) const;

    /**
     * All four segment registers of @p pid at once.  Hot batch loops
     * cache this per process so each reference resolves its segment from
     * a 16-byte register file instead of re-chasing the per-process map.
     * The reference stays valid until the process is destroyed.
     */
    const std::array<uint32_t, kSegmentsPerProcess>&
    RegistersOf(Pid pid) const
    {
        return maps_[pid];
    }

    /** Allocates a fresh global segment number (also used internally). */
    uint32_t AllocateGlobalSegment() { return next_segment_++; }

    /** Number of live (created, not destroyed) processes. */
    size_t NumProcesses() const { return live_; }

  private:
    std::vector<std::array<uint32_t, kSegmentsPerProcess>> maps_;
    std::vector<bool> alive_;
    uint32_t next_segment_ = 1;  // Segment 0 is the kernel's.
    size_t live_ = 0;

    void CheckPid(Pid pid) const;
};

}  // namespace spur::pt

#endif  // SPUR_PT_SEGMENT_MAP_H_

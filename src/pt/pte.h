/**
 * @file
 * The SPUR page table entry, packed as in Figure 3.2(a) of the paper.
 *
 * A PTE holds the physical frame number plus:
 *   PR (2 bits)  page protection,
 *   C            coherency enable,
 *   K            cacheable,
 *   D            page dirty bit,
 *   R            page referenced bit,
 *   V            page valid (resident) bit.
 *
 * Our packing (bit positions are our choice; the paper gives fields, not
 * positions):
 *
 *   31..12  PFN    physical frame number
 *   11..8   SW     software-available bits (bit 8 = Sprite's software
 *                  dirty bit used when emulating dirty bits with
 *                  protection; bit 9 = "page is writable by intent")
 *   7..6    PR     protection (00 none, 01 read-only, 10 read-write)
 *   5       C      coherency enable
 *   4       K      cacheable
 *   3       D      page dirty
 *   2       R      page referenced
 *   1       V      valid
 *   0       --     reserved, reads as zero
 */
#ifndef SPUR_PT_PTE_H_
#define SPUR_PT_PTE_H_

#include <cstdint>

#include "src/common/types.h"

namespace spur::pt {

/** A 32-bit SPUR page table entry (value type, freely copyable). */
class Pte
{
  public:
    Pte() = default;
    explicit Pte(uint32_t raw) : raw_(raw) {}

    /** The raw 32-bit register image. */
    uint32_t raw() const { return raw_; }

    // ---- Field accessors --------------------------------------------------
    FrameNum pfn() const { return raw_ >> kPfnShift; }
    void set_pfn(FrameNum pfn)
    {
        raw_ = (raw_ & ~kPfnMask) | (pfn << kPfnShift);
    }

    Protection protection() const
    {
        return static_cast<Protection>((raw_ >> kProtShift) & 0x3u);
    }
    void set_protection(Protection prot)
    {
        raw_ = (raw_ & ~(0x3u << kProtShift)) |
               (static_cast<uint32_t>(prot) << kProtShift);
    }

    bool coherent() const { return (raw_ & kCohBit) != 0; }
    void set_coherent(bool value) { SetBit(kCohBit, value); }

    bool cacheable() const { return (raw_ & kCacheBit) != 0; }
    void set_cacheable(bool value) { SetBit(kCacheBit, value); }

    /** Hardware page dirty bit (the D of Section 3). */
    bool dirty() const { return (raw_ & kDirtyBit) != 0; }
    void set_dirty(bool value) { SetBit(kDirtyBit, value); }

    /** Hardware page referenced bit (the R of Section 4). */
    bool referenced() const { return (raw_ & kRefBit) != 0; }
    void set_referenced(bool value) { SetBit(kRefBit, value); }

    /** Valid (page resident) bit. */
    bool valid() const { return (raw_ & kValidBit) != 0; }
    void set_valid(bool value) { SetBit(kValidBit, value); }

    // ---- Software bits (used by the Sprite-like VM) -----------------------
    /** Software dirty bit kept by the FAULT/FLUSH emulation handlers. */
    bool soft_dirty() const { return (raw_ & kSoftDirtyBit) != 0; }
    void set_soft_dirty(bool value) { SetBit(kSoftDirtyBit, value); }

    /**
     * True when the page is writable *by intent* even if its current PR is
     * read-only (the FAULT emulation deliberately under-protects pages).
     */
    bool writable_intent() const { return (raw_ & kWritableBit) != 0; }
    void set_writable_intent(bool value) { SetBit(kWritableBit, value); }

    /**
     * True for a freshly zero-filled page that has not yet taken its dirty
     * fault.  Dirty faults on such pages are the N_zfod class that
     * Section 3.2 excludes as non-intrinsic.
     */
    bool zfod_clean() const { return (raw_ & kZfodBit) != 0; }
    void set_zfod_clean(bool value) { SetBit(kZfodBit, value); }

    bool operator==(const Pte& other) const { return raw_ == other.raw_; }

    // Bit layout constants (public so tests can verify Figure 3.2a).
    static constexpr unsigned kPfnShift = 12;
    static constexpr uint32_t kPfnMask = 0xFFFFF000u;
    static constexpr unsigned kProtShift = 6;
    static constexpr uint32_t kCohBit = 1u << 5;
    static constexpr uint32_t kCacheBit = 1u << 4;
    static constexpr uint32_t kDirtyBit = 1u << 3;
    static constexpr uint32_t kRefBit = 1u << 2;
    static constexpr uint32_t kValidBit = 1u << 1;
    static constexpr uint32_t kSoftDirtyBit = 1u << 8;
    static constexpr uint32_t kWritableBit = 1u << 9;
    static constexpr uint32_t kZfodBit = 1u << 10;

  private:
    void SetBit(uint32_t mask, bool value)
    {
        raw_ = value ? (raw_ | mask) : (raw_ & ~mask);
    }

    uint32_t raw_ = 0;
};

}  // namespace spur::pt

#endif  // SPUR_PT_PTE_H_

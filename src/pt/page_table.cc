#include "src/pt/page_table.h"

namespace spur::pt {

const Pte*
PageTable::Find(GlobalVpn vpn) const
{
    const auto it = pages_.find(SecondLevelIndex(vpn));
    if (it == pages_.end()) {
        return nullptr;
    }
    return &(*it->second)[vpn % kPtesPerPage];
}

Pte*
PageTable::FindMutable(GlobalVpn vpn)
{
    const auto it = pages_.find(SecondLevelIndex(vpn));
    if (it == pages_.end()) {
        return nullptr;
    }
    return &(*it->second)[vpn % kPtesPerPage];
}

Pte&
PageTable::Ensure(GlobalVpn vpn)
{
    auto& page = pages_[SecondLevelIndex(vpn)];
    if (!page) {
        page = std::make_unique<TablePage>();
    }
    return (*page)[vpn % kPtesPerPage];
}

void
PageTable::ForEachPte(
    const std::function<void(GlobalVpn, const Pte&)>& fn) const
{
    for (const auto& [second_level, page] : pages_) {
        const GlobalVpn base = second_level * kPtesPerPage;
        for (uint64_t i = 0; i < kPtesPerPage; ++i) {
            fn(base + i, (*page)[i]);
        }
    }
}

size_t
PageTable::NumValidPtes() const
{
    size_t valid = 0;
    ForEachPte([&valid](GlobalVpn, const Pte& pte) {
        if (pte.valid()) {
            ++valid;
        }
    });
    return valid;
}

}  // namespace spur::pt

#include "src/pt/page_table.h"

namespace spur::pt {

const Pte*
PageTable::Find(GlobalVpn vpn) const
{
    const auto it = pages_.find(SecondLevelIndex(vpn));
    if (it == pages_.end()) {
        return nullptr;
    }
    return &(*it->second)[vpn % kPtesPerPage];
}

Pte*
PageTable::FindMutable(GlobalVpn vpn)
{
    const auto it = pages_.find(SecondLevelIndex(vpn));
    if (it == pages_.end()) {
        return nullptr;
    }
    return &(*it->second)[vpn % kPtesPerPage];
}

Pte&
PageTable::Ensure(GlobalVpn vpn)
{
    auto& page = pages_[SecondLevelIndex(vpn)];
    if (!page) {
        page = std::make_unique<TablePage>();
    }
    return (*page)[vpn % kPtesPerPage];
}

}  // namespace spur::pt

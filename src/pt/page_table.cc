#include "src/pt/page_table.h"

namespace spur::pt {

namespace {

/** Fibonacci mix so nearby second-level indices land in distinct slots. */
inline uint64_t
MixIndex(uint64_t index)
{
    return index * uint64_t{0x9E3779B97F4A7C15};
}

}  // namespace

PageTable::Slot&
PageTable::Probe(std::vector<Slot>& slots, uint64_t index)
{
    const uint64_t mask = slots.size() - 1;
    uint64_t i = MixIndex(index) & mask;
    while (slots[i].page != nullptr && slots[i].index != index) {
        i = (i + 1) & mask;
    }
    return slots[i];
}

void
PageTable::Grow()
{
    std::vector<Slot> grown(slots_.size() * 2);
    for (const Slot& slot : slots_) {
        if (slot.page != nullptr) {
            Probe(grown, slot.index) = slot;
        }
    }
    slots_ = std::move(grown);
}

const Pte*
PageTable::FindSlow(GlobalVpn vpn) const
{
    const uint64_t index = SecondLevelIndex(vpn);
    // Probe() only mutates through insertion; a const find never inserts
    // (empty slots have page == nullptr and terminate the walk).
    const Slot& slot =
        Probe(const_cast<std::vector<Slot>&>(slots_), index);
    if (slot.page == nullptr) {
        return nullptr;
    }
    mru_index_ = index;
    mru_page_ = slot.page;
    return &(*slot.page)[vpn % kPtesPerPage];
}

Pte&
PageTable::EnsureSlow(GlobalVpn vpn)
{
    const uint64_t index = SecondLevelIndex(vpn);
    Slot* slot = &Probe(slots_, index);
    if (slot->page == nullptr) {
        if ((count_ + 1) * 2 > slots_.size()) {
            Grow();
            slot = &Probe(slots_, index);
        }
        owned_.push_back(std::make_unique<TablePage>());
        slot->index = index;
        slot->page = owned_.back().get();
        ++count_;
    }
    mru_index_ = index;
    mru_page_ = slot->page;
    return (*slot->page)[vpn % kPtesPerPage];
}

void
PageTable::ForEachPte(
    const std::function<void(GlobalVpn, const Pte&)>& fn) const
{
    for (const Slot& slot : slots_) {
        if (slot.page == nullptr) {
            continue;
        }
        const GlobalVpn base = slot.index * kPtesPerPage;
        for (uint64_t i = 0; i < kPtesPerPage; ++i) {
            fn(base + i, (*slot.page)[i]);
        }
    }
}

size_t
PageTable::NumValidPtes() const
{
    size_t valid = 0;
    ForEachPte([&valid](GlobalVpn, const Pte& pte) {
        if (pte.valid()) {
            ++valid;
        }
    });
    return valid;
}

}  // namespace spur::pt

/**
 * @file
 * SPUR's two-level page table over the global virtual address space.
 *
 * The *first-level* PTE for global virtual page `vpn` lives at a fixed
 * global virtual address computed by shift-and-concatenate hardware:
 * `PteBase + vpn * 4`.  First-level PTE pages are ordinary pageable
 * memory and their blocks compete for cache space ("in-cache translation",
 * [Wood86]).  The *second-level* page tables, which map the first-level
 * PTE pages, are wired down at well-known physical addresses, so a
 * second-level access always goes straight to memory and cannot fault.
 *
 * We store PTE contents authoritatively here; the cache models only which
 * PTE *blocks* are resident (for timing), since on a coherent uniprocessor
 * the cached PTE data can never be stale.  What can go stale are the
 * copies of PR / page-dirty bits held in cache *tags*, which is the whole
 * subject of the paper and is modelled in the cache module.
 */
#ifndef SPUR_PT_PAGE_TABLE_H_
#define SPUR_PT_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/pt/pte.h"

namespace spur::pt {

/** PTEs per first-level page-table page (4 KB / 4 B). */
inline constexpr uint64_t kPtesPerPage = 1024;

/**
 * Global segment number housing the linear first-level PTE array.  Chosen
 * far above anything the segment allocator hands out, so PTE addresses
 * never collide with user segments.
 */
inline constexpr uint64_t kPteSegment = uint64_t{1} << 20;

/** Base global virtual address of the first-level PTE array. */
inline constexpr GlobalAddr kPteBase = kPteSegment << 30;

/** The global page table (one per machine; shared by all processes). */
class PageTable
{
  public:
    PageTable() = default;

    PageTable(const PageTable&) = delete;
    PageTable& operator=(const PageTable&) = delete;

    /**
     * Returns the PTE for @p vpn, or nullptr when no first-level table
     * page covers it yet (the OS has never mapped anything nearby).
     */
    const Pte* Find(GlobalVpn vpn) const
    {
        const uint64_t index = SecondLevelIndex(vpn);
        if (index == mru_index_) {
            return &(*mru_page_)[vpn % kPtesPerPage];
        }
        return FindSlow(vpn);
    }

    /** Mutable variant of Find(). */
    Pte* FindMutable(GlobalVpn vpn)
    {
        const uint64_t index = SecondLevelIndex(vpn);
        if (index == mru_index_) {
            return &(*mru_page_)[vpn % kPtesPerPage];
        }
        return const_cast<Pte*>(FindSlow(vpn));
    }

    /** Returns the PTE for @p vpn, creating its table page on demand. */
    Pte& Ensure(GlobalVpn vpn)
    {
        const uint64_t index = SecondLevelIndex(vpn);
        if (index == mru_index_) {
            return (*mru_page_)[vpn % kPtesPerPage];
        }
        return EnsureSlow(vpn);
    }

    /** Global virtual address of the first-level PTE for @p vpn
     *  (the shift-and-concatenate circuit). */
    static GlobalAddr PteVa(GlobalVpn vpn) { return kPteBase + vpn * 4; }

    /** True when @p addr lies inside the first-level PTE array. */
    static bool IsPteAddr(GlobalAddr addr) { return addr >= kPteBase; }

    /** Inverse of PteVa() (valid only for PTE addresses). */
    static GlobalVpn VpnOfPteVa(GlobalAddr addr)
    {
        return (addr - kPteBase) / 4;
    }

    /** Index of the second-level PTE consulted for @p vpn (the page of
     *  first-level PTEs it lives in). */
    static uint64_t SecondLevelIndex(GlobalVpn vpn)
    {
        return vpn / kPtesPerPage;
    }

    /** Number of first-level page-table pages materialized so far
     *  (these occupy wired kernel frames in the prototype's accounting). */
    size_t NumTablePages() const { return count_; }

    /**
     * Visits every materialized PTE (valid or not) as (vpn, pte).  The
     * invariant-audit passes (src/check/) walk the table through this;
     * iteration order is unspecified.
     */
    void ForEachPte(
        const std::function<void(GlobalVpn, const Pte&)>& fn) const;

    /** Number of *valid* (resident) PTEs across all table pages. */
    size_t NumValidPtes() const;

  private:
    using TablePage = std::array<Pte, kPtesPerPage>;

    /**
     * One open-addressing slot of the second-level index.  Empty slots
     * have page == nullptr (any index value); the table never deletes.
     */
    struct Slot {
        uint64_t index = 0;
        TablePage* page = nullptr;
    };

    /** Table lookup behind the MRU fast path (updates the MRU slot on a
     *  hit). */
    const Pte* FindSlow(GlobalVpn vpn) const;

    /** Table lookup/creation behind the MRU fast path. */
    Pte& EnsureSlow(GlobalVpn vpn);

    /** Slot for @p index in @p slots (match or first empty). */
    static Slot& Probe(std::vector<Slot>& slots, uint64_t index);

    /** Doubles the slot array and re-inserts every page. */
    void Grow();

    // Second-level table: a flat power-of-2 open-addressing map from
    // second-level index to table page.  The simulator walks it on every
    // cache miss (in-cache translation), so probes must stay a single
    // cache line in the common case — a chained std::unordered_map costs
    // a hash-bucket pointer chase per miss.  Table pages are owned
    // separately and never move or die until the PageTable does.
    std::vector<Slot> slots_ = std::vector<Slot>(kInitialSlots);
    std::vector<std::unique_ptr<TablePage>> owned_;
    size_t count_ = 0;

    static constexpr size_t kInitialSlots = 64;

    // One-entry MRU cache over the slot table: cache misses cluster
    // within a first-level table page (1024 vpns), so most
    // Ensure()/Find() calls skip even the flat probe.  The sentinel
    // index is unreachable (it would need a vpn >= 2^60).
    mutable uint64_t mru_index_ = ~uint64_t{0};
    mutable TablePage* mru_page_ = nullptr;
};

}  // namespace spur::pt

#endif  // SPUR_PT_PAGE_TABLE_H_

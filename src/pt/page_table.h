/**
 * @file
 * SPUR's two-level page table over the global virtual address space.
 *
 * The *first-level* PTE for global virtual page `vpn` lives at a fixed
 * global virtual address computed by shift-and-concatenate hardware:
 * `PteBase + vpn * 4`.  First-level PTE pages are ordinary pageable
 * memory and their blocks compete for cache space ("in-cache translation",
 * [Wood86]).  The *second-level* page tables, which map the first-level
 * PTE pages, are wired down at well-known physical addresses, so a
 * second-level access always goes straight to memory and cannot fault.
 *
 * We store PTE contents authoritatively here; the cache models only which
 * PTE *blocks* are resident (for timing), since on a coherent uniprocessor
 * the cached PTE data can never be stale.  What can go stale are the
 * copies of PR / page-dirty bits held in cache *tags*, which is the whole
 * subject of the paper and is modelled in the cache module.
 */
#ifndef SPUR_PT_PAGE_TABLE_H_
#define SPUR_PT_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/common/types.h"
#include "src/pt/pte.h"

namespace spur::pt {

/** PTEs per first-level page-table page (4 KB / 4 B). */
inline constexpr uint64_t kPtesPerPage = 1024;

/**
 * Global segment number housing the linear first-level PTE array.  Chosen
 * far above anything the segment allocator hands out, so PTE addresses
 * never collide with user segments.
 */
inline constexpr uint64_t kPteSegment = uint64_t{1} << 20;

/** Base global virtual address of the first-level PTE array. */
inline constexpr GlobalAddr kPteBase = kPteSegment << 30;

/** The global page table (one per machine; shared by all processes). */
class PageTable
{
  public:
    PageTable() = default;

    PageTable(const PageTable&) = delete;
    PageTable& operator=(const PageTable&) = delete;

    /**
     * Returns the PTE for @p vpn, or nullptr when no first-level table
     * page covers it yet (the OS has never mapped anything nearby).
     */
    const Pte* Find(GlobalVpn vpn) const;

    /** Mutable variant of Find(). */
    Pte* FindMutable(GlobalVpn vpn);

    /** Returns the PTE for @p vpn, creating its table page on demand. */
    Pte& Ensure(GlobalVpn vpn);

    /** Global virtual address of the first-level PTE for @p vpn
     *  (the shift-and-concatenate circuit). */
    static GlobalAddr PteVa(GlobalVpn vpn) { return kPteBase + vpn * 4; }

    /** True when @p addr lies inside the first-level PTE array. */
    static bool IsPteAddr(GlobalAddr addr) { return addr >= kPteBase; }

    /** Inverse of PteVa() (valid only for PTE addresses). */
    static GlobalVpn VpnOfPteVa(GlobalAddr addr)
    {
        return (addr - kPteBase) / 4;
    }

    /** Index of the second-level PTE consulted for @p vpn (the page of
     *  first-level PTEs it lives in). */
    static uint64_t SecondLevelIndex(GlobalVpn vpn)
    {
        return vpn / kPtesPerPage;
    }

    /** Number of first-level page-table pages materialized so far
     *  (these occupy wired kernel frames in the prototype's accounting). */
    size_t NumTablePages() const { return pages_.size(); }

    /**
     * Visits every materialized PTE (valid or not) as (vpn, pte).  The
     * invariant-audit passes (src/check/) walk the table through this;
     * iteration order is unspecified.
     */
    void ForEachPte(
        const std::function<void(GlobalVpn, const Pte&)>& fn) const;

    /** Number of *valid* (resident) PTEs across all table pages. */
    size_t NumValidPtes() const;

  private:
    using TablePage = std::array<Pte, kPtesPerPage>;
    std::unordered_map<uint64_t, std::unique_ptr<TablePage>> pages_;
};

}  // namespace spur::pt

#endif  // SPUR_PT_PAGE_TABLE_H_

#include "src/sweep/cost.h"

#include <algorithm>

namespace spur::sweep {

namespace {
constexpr char kSep = '\x1f';
}  // namespace

CostTable
CostTable::FromDocument(const SweepDocument& document)
{
    CostTable table;
    for (const stats::RunRecord& record : document.records) {
        if (!record.telemetry || record.telemetry->wall_seconds <= 0.0) {
            continue;
        }
        table.Add(record.workload, record.dirty_policy, record.ref_policy,
                  record.memory_mb, record.rep,
                  record.telemetry->wall_seconds);
    }
    return table;
}

void
CostTable::Add(const std::string& workload, const std::string& dirty,
               const std::string& ref, uint32_t memory_mb, uint32_t rep,
               double seconds)
{
    double& slot = costs_[Key(workload, dirty, ref, memory_mb, rep)];
    slot = std::max(slot, seconds);
}

double
CostTable::Lookup(const core::RunConfig& config, uint32_t rep) const
{
    const auto it = costs_.find(Key(core::ToString(config.workload),
                                    ToString(config.dirty),
                                    ToString(config.ref), config.memory_mb,
                                    rep));
    return (it != costs_.end()) ? it->second : -1.0;
}

std::string
CostTable::Key(const std::string& workload, const std::string& dirty,
               const std::string& ref, uint32_t memory_mb, uint32_t rep)
{
    std::string key = workload;
    key += kSep;
    key += dirty;
    key += kSep;
    key += ref;
    key += kSep;
    key += std::to_string(memory_mb);
    key += kSep;
    key += std::to_string(rep);
    return key;
}

}  // namespace spur::sweep

/**
 * @file
 * Measured per-cell cost table for longest-first scheduling.
 *
 * A sweep run with --telemetry records every cell's wall-clock
 * duration.  Feeding that file back via --costs=FILE builds a CostTable
 * keyed by the cell's experiment identity (workload, policies, memory
 * size, repetition — deliberately not the seed, so a table survives a
 * --seed change), and runner::RunMatrix sorts its shard's cells
 * longest-first by these hints.  Scheduling order never feeds into
 * results (every cell is seeded from its identity alone), so the hints
 * change pool utilization, not a single output byte — asserted in
 * tests/sweep_test.cc and CI.
 */
#ifndef SPUR_SWEEP_COST_H_
#define SPUR_SWEEP_COST_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/core/experiment.h"
#include "src/sweep/merge.h"

namespace spur::sweep {

/** Expected wall-clock seconds per cell, from measured telemetry. */
class CostTable
{
  public:
    CostTable() = default;

    /**
     * Builds a table from a sweep document's telemetry.  Records
     * without telemetry (or with zero duration) are skipped; identity
     * collisions keep the largest measurement (conservative for
     * longest-first ordering).
     */
    static CostTable FromDocument(const SweepDocument& document);

    /** Registers one measurement (keeps the max on collision). */
    void Add(const std::string& workload, const std::string& dirty,
             const std::string& ref, uint32_t memory_mb, uint32_t rep,
             double seconds);

    /**
     * Expected duration for one matrix cell, or a negative value when
     * the table holds no measurement for it (unknown cells keep their
     * shuffled position, after all known ones).
     */
    double Lookup(const core::RunConfig& config, uint32_t rep) const;

    bool empty() const { return costs_.empty(); }
    size_t size() const { return costs_.size(); }

  private:
    static std::string Key(const std::string& workload,
                           const std::string& dirty, const std::string& ref,
                           uint32_t memory_mb, uint32_t rep);

    std::map<std::string, double> costs_;
};

}  // namespace spur::sweep

#endif  // SPUR_SWEEP_COST_H_

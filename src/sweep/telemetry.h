/**
 * @file
 * Per-cell telemetry primitives for the sweep layer: a monotonic
 * stopwatch and the process's peak resident set size.
 *
 * The runner samples these around every executed matrix cell so the
 * JSON run records double as a performance trajectory of the simulator
 * itself (wall-clock cost and memory footprint per cell), and so
 * measured durations can be fed back as a cost table for longest-first
 * scheduling (src/sweep/cost.h).
 */
#ifndef SPUR_SWEEP_TELEMETRY_H_
#define SPUR_SWEEP_TELEMETRY_H_

#include <chrono>
#include <cstdint>

namespace spur::sweep {

/** Monotonic wall-clock stopwatch, started at construction. */
class Stopwatch
{
  public:
    Stopwatch()
      : start_(std::chrono::steady_clock::now())
    {
    }

    /** Seconds elapsed since construction. */
    double Seconds() const
    {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(elapsed).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Peak resident set size of this process in bytes (getrusage).  Returns
 * 0 on platforms without getrusage — callers must treat 0 as "not
 * measured", never as an actual footprint.
 */
uint64_t PeakRssBytes();

}  // namespace spur::sweep

#endif  // SPUR_SWEEP_TELEMETRY_H_

/**
 * @file
 * Telemetry trend comparison between two sweep documents.
 *
 * `spur_sweep diff-telemetry BASE.json NEW.json` matches records by
 * cell identity (see RecordIdentity) and compares their --telemetry
 * cost: wall-clock seconds and peak RSS.  Cells whose cost grew by more
 * than the threshold are reported as regressions, so CI can track the
 * simulator's own performance trajectory run over run.
 *
 * Telemetry is machine- and load-dependent, so the diff is advisory by
 * design: the CI step that runs it is non-fatal, thresholds default to
 * a generous +25%, and cells below a noise floor are skipped (a 2 ms
 * cell doubling is scheduler jitter, not a regression).  Result bytes
 * (the records' payload) are never compared here — that is the merge
 * layer's byte-identity contract, which stays strict.
 */
#ifndef SPUR_SWEEP_DIFF_H_
#define SPUR_SWEEP_DIFF_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sweep/merge.h"

namespace spur::sweep {

/** Thresholds for flagging a cell as regressed. */
struct DiffOptions {
    /// Fractional growth that counts as a regression: 0.25 flags cells
    /// whose new cost exceeds base cost by more than 25%.
    double threshold = 0.25;
    /// Cells whose *base* wall time is below this many seconds are
    /// never wall-flagged — too small to measure reliably.
    double min_wall_seconds = 0.01;
    /// Fractional *throughput* (refs/sec) drop that counts as a FATAL
    /// regression: 0.3 flags cells whose refs/sec fell more than 30%
    /// below base.  0 disables the check.  Unlike wall/RSS growth —
    /// advisory by design — a throughput drop beyond this bound plus
    /// the min_wall_seconds noise floor is the CI perf gate's failure
    /// signal (simulated refs per wall second is the end-to-end metric
    /// the hot-path work optimizes).
    double throughput_threshold = 0.0;
};

/** Cost comparison of one cell present in both documents. */
struct CellDelta {
    std::string identity;  ///< RecordIdentity of the cell.
    double base_wall_seconds = 0.0;
    double new_wall_seconds = 0.0;
    uint64_t base_peak_rss_bytes = 0;
    uint64_t new_peak_rss_bytes = 0;
    double base_refs_per_second = 0.0;  ///< refs_issued / wall_seconds.
    double new_refs_per_second = 0.0;
    bool wall_regressed = false;
    bool rss_regressed = false;
    bool throughput_regressed = false;  ///< Fatal (see DiffOptions).
};

/** Outcome of comparing NEW against BASE. */
struct TelemetryDiff {
    /// Cells over threshold, sorted by identity.
    std::vector<CellDelta> regressions;
    size_t compared = 0;           ///< Cells with telemetry on both sides.
    size_t base_only = 0;          ///< Cells present only in BASE.
    size_t new_only = 0;           ///< Cells present only in NEW.
    size_t missing_telemetry = 0;  ///< Matched cells lacking telemetry.
    double base_total_wall_seconds = 0.0;  ///< Sum over compared cells.
    double new_total_wall_seconds = 0.0;   ///< Sum over compared cells.
};

/**
 * Matches @p current's records against @p base by cell identity and
 * compares telemetry.  Duplicate identities within one document keep
 * the max cost (mirrors CostTable's collision rule).
 */
TelemetryDiff DiffTelemetry(const SweepDocument& base,
                            const SweepDocument& current,
                            const DiffOptions& options);

/** True when the diff holds at least one regressed cell. */
bool HasRegressions(const TelemetryDiff& diff);

/** True when the diff holds at least one FATAL (throughput) regression.
 *  Always false unless DiffOptions::throughput_threshold was set. */
bool HasFatalRegressions(const TelemetryDiff& diff);

/**
 * Renders the diff as a deterministic human-readable report: one line
 * per regression (sorted), then a summary line.  Byte-stable for a
 * given diff, so CI logs can themselves be compared.
 */
std::string FormatDiffReport(const TelemetryDiff& diff,
                             const DiffOptions& options);

}  // namespace spur::sweep

#endif  // SPUR_SWEEP_DIFF_H_

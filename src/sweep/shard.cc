#include "src/sweep/shard.h"

#include <cctype>
#include <cstdlib>

namespace spur::sweep {

namespace {

/** Parses a full decimal uint32 from @p s; nullopt on anything else. */
std::optional<uint32_t>
ParseU32(const std::string& s)
{
    if (s.empty() || s.size() > 9) {
        return std::nullopt;
    }
    uint32_t value = 0;
    for (const char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
            return std::nullopt;
        }
        value = value * 10 + static_cast<uint32_t>(c - '0');
    }
    return value;
}

}  // namespace

std::string
ShardSpec::ToString() const
{
    return std::to_string(index) + "/" + std::to_string(count);
}

std::optional<ShardSpec>
ShardSpec::Parse(const std::string& text)
{
    const size_t slash = text.find('/');
    if (slash == std::string::npos) {
        return std::nullopt;
    }
    const std::optional<uint32_t> index = ParseU32(text.substr(0, slash));
    const std::optional<uint32_t> count = ParseU32(text.substr(slash + 1));
    if (!index || !count || *count == 0 || *index >= *count) {
        return std::nullopt;
    }
    return ShardSpec{*index, *count};
}

}  // namespace spur::sweep

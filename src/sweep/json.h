/**
 * @file
 * Minimal JSON parser for the sweep tooling (spur_sweep merge/validate,
 * cost tables).  The repo historically only *wrote* JSON
 * (stats::JsonWriter); merging shard outputs requires reading it back.
 *
 * Scope: full JSON syntax except \uXXXX escapes above the control range
 * (JsonWriter never emits them).  Two properties matter for the merge
 * contract and are guaranteed here:
 *
 *  - Object member order is preserved, so a parse → re-serialize round
 *    trip of a JsonWriter document is byte-identical.
 *  - Numbers keep their raw source token; integer fields re-serialize
 *    through uint64 and doubles through strtod + "%.17g", both of which
 *    round-trip JsonWriter's own output exactly.
 */
#ifndef SPUR_SWEEP_JSON_H_
#define SPUR_SWEEP_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace spur::sweep {

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind : uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool IsNull() const { return kind_ == Kind::kNull; }
    bool IsBool() const { return kind_ == Kind::kBool; }
    bool IsNumber() const { return kind_ == Kind::kNumber; }
    bool IsString() const { return kind_ == Kind::kString; }
    bool IsArray() const { return kind_ == Kind::kArray; }
    bool IsObject() const { return kind_ == Kind::kObject; }

    /** Value of a kBool (false otherwise). */
    bool AsBool() const { return bool_; }

    /**
     * Numeric value via strtod; NaN for kNull (JsonWriter serializes
     * non-finite doubles as null, so null reads back as NaN).
     */
    double AsDouble() const;

    /**
     * The number as an exact unsigned integer.  Nullopt when the value
     * is not a number or its raw token is not a plain non-negative
     * decimal integer that fits uint64.
     */
    std::optional<uint64_t> AsUint64() const;

    /** Decoded string contents of a kString ("" otherwise). */
    const std::string& AsString() const { return text_; }

    /** Raw source token of a kNumber ("" otherwise). */
    const std::string& raw_number() const
    {
        return IsNumber() ? text_ : empty_string();
    }

    /** Array elements (empty for non-arrays). */
    const std::vector<JsonValue>& items() const { return items_; }

    /** Object members in source order (empty for non-objects). */
    const std::vector<std::pair<std::string, JsonValue>>& members() const
    {
        return members_;
    }

    /** First member named @p key, or nullptr. */
    const JsonValue* Find(const std::string& key) const;

    static JsonValue Null();
    static JsonValue Bool(bool value);
    static JsonValue Number(std::string raw);
    static JsonValue String(std::string text);
    static JsonValue Array(std::vector<JsonValue> items);
    static JsonValue Object(
        std::vector<std::pair<std::string, JsonValue>> members);

  private:
    static const std::string& empty_string();

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    std::string text_;  ///< String contents, or the raw number token.
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parses @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected).  On failure returns nullopt and, when
 * @p error is non-null, stores a message naming the byte offset.
 */
std::optional<JsonValue> ParseJson(const std::string& text,
                                   std::string* error);

}  // namespace spur::sweep

#endif  // SPUR_SWEEP_JSON_H_

#include "src/sweep/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace spur::sweep {

namespace {

/** Nesting depth cap: deeper input is malformed, not a sweep document. */
constexpr int kMaxDepth = 64;

class Parser
{
  public:
    explicit Parser(const std::string& text)
      : text_(text)
    {
    }

    std::optional<JsonValue> Parse(std::string* error)
    {
        std::optional<JsonValue> value = ParseValue(0);
        if (value) {
            SkipWhitespace();
            if (pos_ != text_.size()) {
                value.reset();
                error_ = "trailing garbage";
            }
        }
        if (!value && error != nullptr) {
            *error = error_ + " at byte " + std::to_string(pos_);
        }
        return value;
    }

  private:
    void SkipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                break;
            }
            ++pos_;
        }
    }

    bool Fail(const std::string& message)
    {
        if (error_.empty()) {
            error_ = message;
        }
        return false;
    }

    bool Consume(char expected)
    {
        if (pos_ >= text_.size() || text_[pos_] != expected) {
            return Fail(std::string("expected '") + expected + "'");
        }
        ++pos_;
        return true;
    }

    bool ConsumeKeyword(const char* keyword)
    {
        for (const char* k = keyword; *k != '\0'; ++k, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *k) {
                return Fail(std::string("invalid token (expected '") +
                            keyword + "')");
            }
        }
        return true;
    }

    std::optional<std::string> ParseString()
    {
        if (!Consume('"')) {
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                Fail("unescaped control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                break;
            }
            const char escape = text_[pos_++];
            switch (escape) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    Fail("truncated \\u escape");
                    return std::nullopt;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        Fail("bad hex digit in \\u escape");
                        return std::nullopt;
                    }
                }
                // JsonWriter only emits \u00XX (control characters);
                // reading anything wider would need UTF-8 encoding.
                if (code > 0xFF) {
                    Fail("\\u escape above \\u00ff unsupported");
                    return std::nullopt;
                }
                out += static_cast<char>(code);
                break;
              }
              default:
                Fail("bad escape character");
                return std::nullopt;
            }
        }
        Fail("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue> ParseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        const std::string raw = text_.substr(start, pos_ - start);
        // Validate with strtod: catches "-", "1.", ".5", "1e" etc.
        const char* begin = raw.c_str();
        char* end = nullptr;
        std::strtod(begin, &end);
        if (raw.empty() || end != begin + raw.size()) {
            Fail("malformed number");
            return std::nullopt;
        }
        return JsonValue::Number(raw);
    }

    std::optional<JsonValue> ParseValue(int depth)
    {
        if (depth > kMaxDepth) {
            Fail("nesting too deep");
            return std::nullopt;
        }
        SkipWhitespace();
        if (pos_ >= text_.size()) {
            Fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        switch (c) {
          case '{': return ParseObject(depth);
          case '[': return ParseArray(depth);
          case '"': {
            std::optional<std::string> s = ParseString();
            if (!s) {
                return std::nullopt;
            }
            return JsonValue::String(*std::move(s));
          }
          case 't':
            if (!ConsumeKeyword("true")) {
                return std::nullopt;
            }
            return JsonValue::Bool(true);
          case 'f':
            if (!ConsumeKeyword("false")) {
                return std::nullopt;
            }
            return JsonValue::Bool(false);
          case 'n':
            if (!ConsumeKeyword("null")) {
                return std::nullopt;
            }
            return JsonValue::Null();
          default:
            if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
                return ParseNumber();
            }
            Fail("unexpected character");
            return std::nullopt;
        }
    }

    std::optional<JsonValue> ParseArray(int depth)
    {
        if (!Consume('[')) {
            return std::nullopt;
        }
        std::vector<JsonValue> items;
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return JsonValue::Array(std::move(items));
        }
        for (;;) {
            std::optional<JsonValue> item = ParseValue(depth + 1);
            if (!item) {
                return std::nullopt;
            }
            items.push_back(*std::move(item));
            SkipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (!Consume(']')) {
                return std::nullopt;
            }
            return JsonValue::Array(std::move(items));
        }
    }

    std::optional<JsonValue> ParseObject(int depth)
    {
        if (!Consume('{')) {
            return std::nullopt;
        }
        std::vector<std::pair<std::string, JsonValue>> members;
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return JsonValue::Object(std::move(members));
        }
        for (;;) {
            SkipWhitespace();
            std::optional<std::string> key = ParseString();
            if (!key) {
                return std::nullopt;
            }
            SkipWhitespace();
            if (!Consume(':')) {
                return std::nullopt;
            }
            std::optional<JsonValue> value = ParseValue(depth + 1);
            if (!value) {
                return std::nullopt;
            }
            members.emplace_back(*std::move(key), *std::move(value));
            SkipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (!Consume('}')) {
                return std::nullopt;
            }
            return JsonValue::Object(std::move(members));
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
    std::string error_;
};

}  // namespace

double
JsonValue::AsDouble() const
{
    if (IsNull()) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    if (!IsNumber()) {
        return 0.0;
    }
    return std::strtod(text_.c_str(), nullptr);
}

std::optional<uint64_t>
JsonValue::AsUint64() const
{
    if (!IsNumber() || text_.empty()) {
        return std::nullopt;
    }
    for (const char c : text_) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
            return std::nullopt;  // Sign, fraction or exponent: not exact.
        }
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long value =
        std::strtoull(text_.c_str(), &end, 10);
    if (errno != 0 || end != text_.c_str() + text_.size()) {
        return std::nullopt;
    }
    return static_cast<uint64_t>(value);
}

const JsonValue*
JsonValue::Find(const std::string& key) const
{
    for (const auto& [name, value] : members_) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

const std::string&
JsonValue::empty_string()
{
    static const std::string empty;
    return empty;
}

JsonValue
JsonValue::Null()
{
    return JsonValue();
}

JsonValue
JsonValue::Bool(bool value)
{
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = value;
    return v;
}

JsonValue
JsonValue::Number(std::string raw)
{
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.text_ = std::move(raw);
    return v;
}

JsonValue
JsonValue::String(std::string text)
{
    JsonValue v;
    v.kind_ = Kind::kString;
    v.text_ = std::move(text);
    return v;
}

JsonValue
JsonValue::Array(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::kArray;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::Object(std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::kObject;
    v.members_ = std::move(members);
    return v;
}

std::optional<JsonValue>
ParseJson(const std::string& text, std::string* error)
{
    return Parser(text).Parse(error);
}

}  // namespace spur::sweep

/**
 * @file
 * Crash-tolerant streaming record output (DESIGN.md §14).
 *
 * `BenchSession` historically buffered every record until `Finish()`,
 * so a crashed or OOM-killed shard lost its whole slice.  A stream file
 * is the incremental alternative: each completed cell is appended as an
 * fsync'd length-prefixed frame the moment it is recorded, so a killed
 * process leaves every finished cell on disk.  The format:
 *
 *     SPUR-STREAM/1\n                    magic line
 *     H <len>\n<header-json>\n           bench name + shard index/count
 *     R <len>\n<record-json>\n           one frame per RunRecord, in
 *     ...                                recording order (fsync'd each)
 *     T <len>\n<trailer-json>\n          record count, schema_version,
 *                                        full shard header, FNV-1a64
 *                                        content digest (hex)
 *
 * Frame payloads are exactly the bytes `stats::JsonWriter` emits for the
 * same object, so a recovered document re-serializes byte-identically.
 *
 * Recovery semantics (spur_sweep recover): a stream whose tail was cut
 * at *any* byte offset — the only artifact a crash can leave, since
 * every frame is fsync'd before the next begins — recovers to the
 * longest prefix of complete frames; the torn tail is dropped and
 * reported.  A stream with a verified trailer recovers to the exact
 * document `--json` would have written.  Damage that truncation cannot
 * explain (bad magic, a complete frame that does not round-trip, a
 * trailer whose count or digest disagrees) is a hard error, never a
 * silent partial result.  tests/stream_test.cc cuts a stream at every
 * byte offset and proves recover + --resume reproduce the uninterrupted
 * document byte for byte.
 */
#ifndef SPUR_SWEEP_STREAM_H_
#define SPUR_SWEEP_STREAM_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/stats/run_record.h"
#include "src/sweep/merge.h"

namespace spur::sweep {

/** Version of the stream framing; bump on any framing change. */
inline constexpr int kStreamVersion = 1;

/** First line of every stream file. */
inline constexpr char kStreamMagic[] = "SPUR-STREAM/1\n";

// ---------------------------------------------------------------------------
// Frame encoding, shared by StreamWriter (fsync'd files) and the sweep
// service (src/serve/), whose reply to a client is exactly the bytes a
// local --stream run would have written — the byte-identity contract
// rests on both producers calling these functions.
// ---------------------------------------------------------------------------

/** Renders one frame: "<tag> <len>\n<payload>\n". */
std::string EncodeStreamFrame(char tag, const std::string& payload);

/** The header-frame payload (stream version, bench, shard K/N). */
std::string EncodeStreamHeaderPayload(const std::string& bench,
                                      uint32_t shard_index,
                                      uint32_t shard_count);

/**
 * The trailer-frame payload: record count, schema version, the full
 * shard header from @p meta, and the content digest in hex.
 */
std::string EncodeStreamTrailerPayload(const stats::DocumentMeta& meta,
                                       uint64_t records, uint64_t digest);

/** Initial value of the rolling content digest (FNV-1a 64 offset). */
uint64_t StreamDigestInit();

/** Mixes one record payload (plus frame separator) into the digest. */
uint64_t StreamDigestMix(uint64_t digest, const std::string& payload);

/**
 * Appends records to a stream file as they are recorded.  Every write
 * (the header at Open, each record frame, the trailer at Finish) is
 * flushed with fsync before the call returns, so the on-disk prefix is
 * always a recoverable stream.  Not thread-safe; BenchSession serializes
 * calls under its record mutex.
 */
class StreamWriter
{
  public:
    StreamWriter() = default;
    ~StreamWriter();

    StreamWriter(const StreamWriter&) = delete;
    StreamWriter& operator=(const StreamWriter&) = delete;

    /**
     * Creates/truncates @p path and writes the magic line plus the
     * header frame (bench name, shard index/count).  False + *error on
     * I/O failure.
     */
    bool Open(const std::string& path, const std::string& bench,
              uint32_t shard_index, uint32_t shard_count,
              std::string* error);

    /** Appends one fsync'd record frame.  False + *error on failure. */
    bool Append(const stats::RunRecord& record, std::string* error);

    /**
     * Writes the trailer frame (record count, schema version, the full
     * shard header from @p meta, content digest) and closes the file.
     * False + *error on failure (the file is closed either way).
     */
    bool Finish(const stats::DocumentMeta& meta, std::string* error);

    /** True between a successful Open and Finish (or a write failure). */
    bool is_open() const { return fd_ >= 0; }

    /** Record frames appended so far. */
    uint64_t appended() const { return appended_; }

  private:
    bool WriteFrame(char tag, const std::string& payload,
                    std::string* error);
    void Close();

    int fd_ = -1;
    uint64_t appended_ = 0;
    uint64_t digest_ = 0;
};

/** Outcome of reading a stream file back. */
struct RecoveredStream {
    /// True when the trailer was present and verified; the document is
    /// then exactly what --json would have written.  False = truncated
    /// stream; the document is a valid partial one (shard index/count
    /// from the header, 0/0 cell accounting) holding every complete
    /// record, suitable for --resume.
    bool complete = false;
    SweepDocument document;
    /// Torn tail bytes dropped after the last complete frame.
    uint64_t dropped_bytes = 0;
    /// One-line human-readable recovery summary.
    std::string note;
};

/**
 * Parses @p bytes as a stream.  Truncation at any byte offset recovers
 * the longest complete-frame prefix; corruption (anything truncation
 * cannot produce) returns nullopt with *error set.
 */
std::optional<RecoveredStream> RecoverStreamBytes(const std::string& bytes,
                                                  std::string* error);

/** Reads @p path and recovers it via RecoverStreamBytes. */
std::optional<RecoveredStream> RecoverStreamFile(const std::string& path,
                                                 std::string* error);

}  // namespace spur::sweep

#endif  // SPUR_SWEEP_STREAM_H_

#include "src/sweep/merge.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>
#include <tuple>
#include <utility>

#include "src/sweep/json.h"

namespace spur::sweep {

namespace {

/** Separator for identity keys; never appears in our names. */
constexpr char kSep = '\x1f';

bool
Fail(std::string* error, const std::string& message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

/** Reads a non-negative integer field into @p out. */
template <typename T>
bool
ReadUint(const JsonValue& value, const char* name, T* out,
         std::string* error)
{
    const std::optional<uint64_t> parsed = value.AsUint64();
    if (!parsed || *parsed > std::numeric_limits<T>::max()) {
        return Fail(error, std::string("field '") + name +
                               "' must be a non-negative integer");
    }
    *out = static_cast<T>(*parsed);
    return true;
}

bool
ParseTelemetry(const JsonValue& value, stats::CellTelemetry* out,
               std::string* error)
{
    if (!value.IsObject()) {
        return Fail(error, "'telemetry' must be an object");
    }
    bool saw_wall = false;
    bool saw_rss = false;
    bool saw_worker = false;
    for (const auto& [name, field] : value.members()) {
        if (name == "wall_seconds") {
            if (!field.IsNumber() && !field.IsNull()) {
                return Fail(error, "'wall_seconds' must be a number");
            }
            out->wall_seconds = field.AsDouble();
            saw_wall = true;
        } else if (name == "peak_rss_bytes") {
            if (!ReadUint(field, "peak_rss_bytes", &out->peak_rss_bytes,
                          error)) {
                return false;
            }
            saw_rss = true;
        } else if (name == "worker") {
            if (!ReadUint(field, "worker", &out->worker, error)) {
                return false;
            }
            saw_worker = true;
        } else {
            return Fail(error, "unknown telemetry field '" + name + "'");
        }
    }
    if (!saw_wall || !saw_rss || !saw_worker) {
        return Fail(error, "telemetry is missing a required field");
    }
    return true;
}

}  // namespace

bool
ParseRunRecord(const JsonValue& value, stats::RunRecord* out,
               std::string* error)
{
    if (!value.IsObject()) {
        return Fail(error, "record must be an object");
    }
    std::set<std::string> seen;
    for (const auto& [name, field] : value.members()) {
        if (!seen.insert(name).second) {
            return Fail(error, "duplicate record field '" + name + "'");
        }
        if (name == "bench" || name == "workload" ||
            name == "dirty_policy" || name == "ref_policy") {
            if (!field.IsString()) {
                return Fail(error,
                            "field '" + name + "' must be a string");
            }
            if (name == "bench") {
                out->bench = field.AsString();
            } else if (name == "workload") {
                out->workload = field.AsString();
            } else if (name == "dirty_policy") {
                out->dirty_policy = field.AsString();
            } else {
                out->ref_policy = field.AsString();
            }
        } else if (name == "memory_mb") {
            if (!ReadUint(field, "memory_mb", &out->memory_mb, error)) {
                return false;
            }
        } else if (name == "rep") {
            if (!ReadUint(field, "rep", &out->rep, error)) {
                return false;
            }
        } else if (name == "seed") {
            if (!ReadUint(field, "seed", &out->seed, error)) {
                return false;
            }
        } else if (name == "refs_issued") {
            if (!ReadUint(field, "refs_issued", &out->refs_issued, error)) {
                return false;
            }
        } else if (name == "page_ins") {
            if (!ReadUint(field, "page_ins", &out->page_ins, error)) {
                return false;
            }
        } else if (name == "page_outs") {
            if (!ReadUint(field, "page_outs", &out->page_outs, error)) {
                return false;
            }
        } else if (name == "elapsed_seconds") {
            if (!field.IsNumber() && !field.IsNull()) {
                return Fail(error, "'elapsed_seconds' must be a number");
            }
            out->elapsed_seconds = field.AsDouble();
        } else if (name == "metrics") {
            if (!field.IsObject()) {
                return Fail(error, "'metrics' must be an object");
            }
            for (const auto& [metric, metric_value] : field.members()) {
                if (!metric_value.IsNumber() && !metric_value.IsNull()) {
                    return Fail(error, "metric '" + metric +
                                           "' must be a number");
                }
                out->AddMetric(metric, metric_value.AsDouble());
            }
        } else if (name == "telemetry") {
            stats::CellTelemetry telemetry;
            if (!ParseTelemetry(field, &telemetry, error)) {
                return false;
            }
            out->telemetry = telemetry;
        } else {
            return Fail(error, "unknown record field '" + name + "'");
        }
    }
    for (const char* required :
         {"bench", "workload", "dirty_policy", "ref_policy", "memory_mb",
          "rep", "seed", "refs_issued", "page_ins", "page_outs",
          "elapsed_seconds", "metrics"}) {
        if (seen.find(required) == seen.end()) {
            return Fail(error, std::string("record is missing field '") +
                                   required + "'");
        }
    }
    return true;
}

bool
ParseShardHeader(const JsonValue& value, stats::DocumentMeta* meta,
                 std::string* error)
{
    if (!value.IsObject()) {
        return Fail(error, "'shard' must be an object");
    }
    std::set<std::string> seen;
    for (const auto& [name, field] : value.members()) {
        seen.insert(name);
        if (name == "index") {
            if (!ReadUint(field, "index", &meta->shard_index, error)) {
                return false;
            }
        } else if (name == "count") {
            if (!ReadUint(field, "count", &meta->shard_count, error)) {
                return false;
            }
        } else if (name == "total_cells") {
            if (!ReadUint(field, "total_cells", &meta->total_cells,
                          error)) {
                return false;
            }
        } else if (name == "ran_cells") {
            if (!ReadUint(field, "ran_cells", &meta->ran_cells, error)) {
                return false;
            }
        } else {
            return Fail(error, "unknown shard field '" + name + "'");
        }
    }
    for (const char* required :
         {"index", "count", "total_cells", "ran_cells"}) {
        if (seen.find(required) == seen.end()) {
            return Fail(error, std::string("shard header is missing '") +
                                   required + "'");
        }
    }
    if (meta->shard_count == 0 || meta->shard_index >= meta->shard_count) {
        return Fail(error, "shard index " +
                               std::to_string(meta->shard_index) +
                               " out of range for count " +
                               std::to_string(meta->shard_count));
    }
    if (meta->ran_cells > meta->total_cells) {
        return Fail(error, "shard claims more ran_cells than total_cells");
    }
    return true;
}

bool
ValidateShardAccounting(const SweepDocument& document, std::string* error)
{
    const stats::DocumentMeta& meta = document.meta;
    if (meta.total_cells == 0) {
        return true;  // Bespoke-only sessions track no matrix cells.
    }
    // Cell ordinal o belongs to shard K of N iff o % N == K, so the
    // slice of a total_cells-cell session is:
    const uint64_t slice =
        (meta.total_cells > meta.shard_index)
            ? (meta.total_cells - meta.shard_index - 1) / meta.shard_count +
                  1
            : 0;
    if (meta.ran_cells != slice) {
        return Fail(error,
                    "shard " + std::to_string(meta.shard_index) + "/" +
                        std::to_string(meta.shard_count) + " of " +
                        std::to_string(meta.total_cells) +
                        " cells must have run " + std::to_string(slice) +
                        ", claims " + std::to_string(meta.ran_cells) +
                        (meta.ran_cells < slice
                             ? " (crashed shard? recover + --resume it)"
                             : " (duplicated cells?)"));
    }
    return true;
}

std::optional<SweepDocument>
ParseSweepDocument(const std::string& json, std::string* error)
{
    const std::optional<JsonValue> root = ParseJson(json, error);
    if (!root) {
        return std::nullopt;
    }
    if (!root->IsObject()) {
        Fail(error, "document must be a JSON object");
        return std::nullopt;
    }
    SweepDocument document;
    std::set<std::string> seen;
    for (const auto& [name, field] : root->members()) {
        seen.insert(name);
        if (name == "schema_version") {
            const std::optional<uint64_t> version = field.AsUint64();
            if (!version) {
                Fail(error, "'schema_version' must be an integer");
                return std::nullopt;
            }
            if (*version != static_cast<uint64_t>(stats::kSchemaVersion)) {
                Fail(error, "unknown schema_version " +
                                std::to_string(*version) + " (expected " +
                                std::to_string(stats::kSchemaVersion) +
                                ")");
                return std::nullopt;
            }
            document.schema_version = static_cast<int>(*version);
        } else if (name == "bench") {
            if (!field.IsString()) {
                Fail(error, "'bench' must be a string");
                return std::nullopt;
            }
            document.meta.bench = field.AsString();
        } else if (name == "shard") {
            if (!ParseShardHeader(field, &document.meta, error)) {
                return std::nullopt;
            }
        } else if (name == "records") {
            if (!field.IsArray()) {
                Fail(error, "'records' must be an array");
                return std::nullopt;
            }
            document.records.reserve(field.items().size());
            for (size_t i = 0; i < field.items().size(); ++i) {
                stats::RunRecord record;
                std::string record_error;
                if (!ParseRunRecord(field.items()[i], &record,
                                    &record_error)) {
                    Fail(error, "record " + std::to_string(i) + ": " +
                                    record_error);
                    return std::nullopt;
                }
                document.records.push_back(std::move(record));
            }
        } else {
            Fail(error, "unknown document field '" + name + "'");
            return std::nullopt;
        }
    }
    for (const char* required :
         {"schema_version", "bench", "shard", "records"}) {
        if (seen.find(required) == seen.end()) {
            Fail(error, std::string("document is missing '") + required +
                            "' (pre-versioning file?)");
            return std::nullopt;
        }
    }
    if (document.records.size() < document.meta.ran_cells) {
        Fail(error, "document has fewer records than ran_cells claims");
        return std::nullopt;
    }
    return document;
}

std::optional<SweepDocument>
LoadSweepFile(const std::string& path, std::string* error)
{
    FILE* file = (path == "-") ? stdin : std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        Fail(error, path + ": cannot open");
        return std::nullopt;
    }
    std::string contents;
    char buffer[1 << 16];
    size_t read = 0;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        contents.append(buffer, read);
    }
    const bool io_error = (std::ferror(file) != 0);
    if (file != stdin) {
        std::fclose(file);
    }
    if (io_error) {
        Fail(error, path + ": read error");
        return std::nullopt;
    }
    std::string parse_error;
    std::optional<SweepDocument> document =
        ParseSweepDocument(contents, &parse_error);
    if (!document) {
        Fail(error, path + ": " + parse_error);
    }
    return document;
}

std::string
RecordIdentity(const stats::RunRecord& record)
{
    std::string key = record.bench;
    key += kSep;
    key += record.workload;
    key += kSep;
    key += record.dirty_policy;
    key += kSep;
    key += record.ref_policy;
    key += kSep;
    key += std::to_string(record.memory_mb);
    key += kSep;
    key += std::to_string(record.rep);
    key += kSep;
    key += std::to_string(record.seed);
    return key;
}

std::string
RecordPayload(const stats::RunRecord& record)
{
    if (!record.telemetry) {
        return stats::JsonWriter::ToJson(record);
    }
    stats::RunRecord stripped = record;
    stripped.telemetry.reset();
    return stats::JsonWriter::ToJson(stripped);
}

std::optional<SweepDocument>
MergeDocuments(std::vector<SweepDocument> documents,
               const MergeOptions& options, std::string* error)
{
    if (documents.empty()) {
        Fail(error, "no documents to merge");
        return std::nullopt;
    }
    const stats::DocumentMeta& first = documents[0].meta;
    std::set<uint32_t> indices;
    uint64_t ran_sum = 0;
    for (const SweepDocument& document : documents) {
        const stats::DocumentMeta& meta = document.meta;
        if (meta.bench != first.bench) {
            Fail(error, "bench mismatch: '" + first.bench + "' vs '" +
                            meta.bench + "'");
            return std::nullopt;
        }
        if (meta.shard_count != first.shard_count) {
            Fail(error, "shard count mismatch: " +
                            std::to_string(first.shard_count) + " vs " +
                            std::to_string(meta.shard_count));
            return std::nullopt;
        }
        if (meta.total_cells != first.total_cells) {
            Fail(error, "total_cells mismatch: " +
                            std::to_string(first.total_cells) + " vs " +
                            std::to_string(meta.total_cells) +
                            " (different sweep shapes?)");
            return std::nullopt;
        }
        if (!indices.insert(meta.shard_index).second) {
            Fail(error, "shard " + std::to_string(meta.shard_index) + "/" +
                            std::to_string(meta.shard_count) +
                            " appears more than once");
            return std::nullopt;
        }
        ran_sum += meta.ran_cells;
    }
    if (indices.size() != first.shard_count) {
        std::string missing;
        for (uint32_t i = 0; i < first.shard_count; ++i) {
            if (indices.find(i) == indices.end()) {
                missing += missing.empty() ? "" : ", ";
                missing += std::to_string(i);
            }
        }
        Fail(error, "missing shard(s) " + missing + " of " +
                        std::to_string(first.shard_count));
        return std::nullopt;
    }
    if (first.total_cells > 0 && ran_sum != first.total_cells) {
        Fail(error,
             std::string(ran_sum > first.total_cells ? "duplicate"
                                                     : "missing") +
                 " cells: shards ran " + std::to_string(ran_sum) +
                 " of " + std::to_string(first.total_cells));
        return std::nullopt;
    }

    // Canonical order: cell identity, then telemetry-stripped payload,
    // then the full serialization as a deterministic tiebreaker.
    struct Entry {
        std::string identity;
        std::string payload;
        std::string full;
        stats::RunRecord record;
    };
    std::vector<Entry> entries;
    for (SweepDocument& document : documents) {
        for (stats::RunRecord& record : document.records) {
            if (options.strip_telemetry) {
                record.telemetry.reset();
            }
            Entry entry;
            entry.identity = RecordIdentity(record);
            entry.payload = RecordPayload(record);
            entry.full = stats::JsonWriter::ToJson(record);
            entry.record = std::move(record);
            entries.push_back(std::move(entry));
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                  return std::tie(a.identity, a.payload, a.full) <
                         std::tie(b.identity, b.payload, b.full);
              });

    SweepDocument merged;
    merged.meta.bench = first.bench;
    merged.meta.total_cells = first.total_cells;
    merged.meta.ran_cells = ran_sum;
    for (size_t i = 0; i < entries.size(); ++i) {
        if (i > 0 && entries[i].identity == entries[i - 1].identity) {
            if (entries[i].payload != entries[i - 1].payload) {
                Fail(error,
                     "conflicting records for one cell (workload " +
                         entries[i].record.workload + ", " +
                         std::to_string(entries[i].record.memory_mb) +
                         " MB, rep " +
                         std::to_string(entries[i].record.rep) +
                         ", seed " +
                         std::to_string(entries[i].record.seed) +
                         "): incompatible shard runs?");
                return std::nullopt;
            }
            // Identical payload: the same deterministic record computed
            // by several shards (bespoke records); keep one.
            continue;
        }
        merged.records.push_back(std::move(entries[i].record));
    }
    return merged;
}

std::string
ToJson(const SweepDocument& document)
{
    return stats::JsonWriter::ToJson(document.meta, document.records);
}

}  // namespace spur::sweep

#include "src/sweep/stream.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/sweep/json.h"

namespace spur::sweep {

namespace {

// FNV-1a 64 (public domain): deterministic, dependency-free content
// digest for the trailer.  Each record payload is mixed followed by a
// '\n' separator so payload boundaries cannot alias.
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/** Frame payloads larger than this are corruption, not sweep records. */
constexpr uint64_t kMaxFramePayload = 1ULL << 30;

std::string
DigestHex(uint64_t digest)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buffer;
}

bool
Fail(std::string* error, const std::string& message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

/** write(2) until every byte landed (EINTR-safe). */
bool
WriteAll(int fd, const std::string& data)
{
    size_t written = 0;
    while (written < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        written += static_cast<size_t>(n);
    }
    return true;
}

// ---------------------------------------------------------------------------
// Frame scanning (reader side)
// ---------------------------------------------------------------------------

enum class FrameStatus : uint8_t {
    kOk,
    kTruncated,  ///< Bytes ran out mid-frame: a crash artifact.
    kCorrupt,    ///< Malformed despite enough bytes: never truncation.
};

struct Frame {
    char tag = '\0';
    std::string payload;
    size_t end = 0;  ///< Offset of the first byte after the frame.
};

FrameStatus
NextFrame(const std::string& bytes, size_t pos, Frame* out,
          std::string* why)
{
    const char tag = bytes[pos];
    if (tag != 'H' && tag != 'R' && tag != 'T') {
        *why = "unknown frame tag";
        return FrameStatus::kCorrupt;
    }
    size_t p = pos + 1;
    if (p >= bytes.size()) {
        return FrameStatus::kTruncated;
    }
    if (bytes[p] != ' ') {
        *why = "missing space after frame tag";
        return FrameStatus::kCorrupt;
    }
    ++p;
    uint64_t length = 0;
    size_t digits = 0;
    while (p < bytes.size() && bytes[p] >= '0' && bytes[p] <= '9') {
        length = length * 10 + static_cast<uint64_t>(bytes[p] - '0');
        if (length > kMaxFramePayload) {
            *why = "frame length out of range";
            return FrameStatus::kCorrupt;
        }
        ++digits;
        ++p;
    }
    if (p >= bytes.size()) {
        return FrameStatus::kTruncated;
    }
    if (digits == 0 || bytes[p] != '\n') {
        *why = "malformed frame length";
        return FrameStatus::kCorrupt;
    }
    ++p;
    if (p + length + 1 > bytes.size()) {
        return FrameStatus::kTruncated;
    }
    if (bytes[p + length] != '\n') {
        *why = "frame payload not newline-terminated";
        return FrameStatus::kCorrupt;
    }
    out->tag = tag;
    out->payload = bytes.substr(p, length);
    out->end = p + length + 1;
    return FrameStatus::kOk;
}

/** Reads one exact non-negative integer member, or fails. */
bool
HeaderUint(const JsonValue& object, const char* key, uint64_t* out,
           std::string* why)
{
    const JsonValue* field = object.Find(key);
    if (field == nullptr) {
        return Fail(why, std::string("missing '") + key + "'");
    }
    const std::optional<uint64_t> value = field->AsUint64();
    if (!value) {
        return Fail(why, std::string("'") + key +
                             "' must be a non-negative integer");
    }
    *out = *value;
    return true;
}

/**
 * Parses the header frame payload:
 * {"stream_version": 1, "bench": NAME, "shard": {"index": K, "count": N}}.
 */
bool
ParseStreamHeader(const std::string& payload, stats::DocumentMeta* meta,
                  std::string* why)
{
    std::string parse_error;
    const std::optional<JsonValue> root = ParseJson(payload, &parse_error);
    if (!root || !root->IsObject()) {
        return Fail(why, root ? "header is not an object" : parse_error);
    }
    if (root->members().size() != 3) {
        return Fail(why, "header must have exactly stream_version, bench "
                         "and shard");
    }
    uint64_t version = 0;
    if (!HeaderUint(*root, "stream_version", &version, why)) {
        return false;
    }
    if (version != static_cast<uint64_t>(kStreamVersion)) {
        return Fail(why, "unknown stream_version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kStreamVersion) + ")");
    }
    const JsonValue* bench = root->Find("bench");
    if (bench == nullptr || !bench->IsString()) {
        return Fail(why, "'bench' must be a string");
    }
    const JsonValue* shard = root->Find("shard");
    if (shard == nullptr || !shard->IsObject() ||
        shard->members().size() != 2) {
        return Fail(why, "'shard' must be an object with index and count");
    }
    uint64_t index = 0;
    uint64_t count = 0;
    if (!HeaderUint(*shard, "index", &index, why) ||
        !HeaderUint(*shard, "count", &count, why)) {
        return false;
    }
    if (count == 0 || index >= count || count > UINT32_MAX) {
        return Fail(why, "shard index " + std::to_string(index) +
                             " out of range for count " +
                             std::to_string(count));
    }
    meta->bench = bench->AsString();
    meta->shard_index = static_cast<uint32_t>(index);
    meta->shard_count = static_cast<uint32_t>(count);
    return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame encoding (shared with src/serve/)
// ---------------------------------------------------------------------------

std::string
EncodeStreamFrame(char tag, const std::string& payload)
{
    std::string frame;
    frame.reserve(payload.size() + 16);
    frame += tag;
    frame += ' ';
    frame += std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';
    return frame;
}

std::string
EncodeStreamHeaderPayload(const std::string& bench, uint32_t shard_index,
                          uint32_t shard_count)
{
    std::string header = "{\"stream_version\": ";
    header += std::to_string(kStreamVersion);
    header += ", \"bench\": \"";
    header += stats::JsonWriter::Escape(bench);
    header += "\", \"shard\": {\"index\": ";
    header += std::to_string(shard_index);
    header += ", \"count\": ";
    header += std::to_string(shard_count);
    header += "}}";
    return header;
}

std::string
EncodeStreamTrailerPayload(const stats::DocumentMeta& meta,
                           uint64_t records, uint64_t digest)
{
    std::string trailer = "{\"records\": ";
    trailer += std::to_string(records);
    trailer += ", \"schema_version\": ";
    trailer += std::to_string(stats::kSchemaVersion);
    trailer += ", \"shard\": {\"index\": ";
    trailer += std::to_string(meta.shard_index);
    trailer += ", \"count\": ";
    trailer += std::to_string(meta.shard_count);
    trailer += ", \"total_cells\": ";
    trailer += std::to_string(meta.total_cells);
    trailer += ", \"ran_cells\": ";
    trailer += std::to_string(meta.ran_cells);
    trailer += "}, \"digest\": \"";
    trailer += DigestHex(digest);
    trailer += "\"}";
    return trailer;
}

uint64_t
StreamDigestInit()
{
    return kFnvOffset;
}

uint64_t
StreamDigestMix(uint64_t digest, const std::string& payload)
{
    for (const char c : payload) {
        digest ^= static_cast<unsigned char>(c);
        digest *= kFnvPrime;
    }
    digest ^= static_cast<unsigned char>('\n');
    digest *= kFnvPrime;
    return digest;
}

// ---------------------------------------------------------------------------
// StreamWriter
// ---------------------------------------------------------------------------

StreamWriter::~StreamWriter()
{
    Close();
}

void
StreamWriter::Close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
StreamWriter::WriteFrame(char tag, const std::string& payload,
                         std::string* error)
{
    const std::string frame = EncodeStreamFrame(tag, payload);
    if (!WriteAll(fd_, frame) || ::fsync(fd_) != 0) {
        Fail(error, std::string("stream write failed: ") +
                        std::strerror(errno));
        Close();
        return false;
    }
    return true;
}

bool
StreamWriter::Open(const std::string& path, const std::string& bench,
                   uint32_t shard_index, uint32_t shard_count,
                   std::string* error)
{
    if (fd_ >= 0) {
        return Fail(error, "stream already open");
    }
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
        return Fail(error,
                    path + ": cannot open: " + std::strerror(errno));
    }
    appended_ = 0;
    digest_ = StreamDigestInit();
    if (!WriteAll(fd_, kStreamMagic)) {
        Fail(error, path + ": write failed: " + std::strerror(errno));
        Close();
        return false;
    }
    return WriteFrame(
        'H', EncodeStreamHeaderPayload(bench, shard_index, shard_count),
        error);
}

bool
StreamWriter::Append(const stats::RunRecord& record, std::string* error)
{
    if (fd_ < 0) {
        return Fail(error, "stream is not open");
    }
    const std::string payload = stats::JsonWriter::ToJson(record);
    if (!WriteFrame('R', payload, error)) {
        return false;
    }
    digest_ = StreamDigestMix(digest_, payload);
    ++appended_;
    return true;
}

bool
StreamWriter::Finish(const stats::DocumentMeta& meta, std::string* error)
{
    if (fd_ < 0) {
        return Fail(error, "stream is not open");
    }
    const bool ok = WriteFrame(
        'T', EncodeStreamTrailerPayload(meta, appended_, digest_), error);
    Close();
    return ok;
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

std::optional<RecoveredStream>
RecoverStreamBytes(const std::string& bytes, std::string* error)
{
    const std::string magic = kStreamMagic;
    RecoveredStream out;
    if (bytes.size() < magic.size()) {
        if (magic.compare(0, bytes.size(), bytes) != 0) {
            Fail(error, "not a SPUR stream (bad magic)");
            return std::nullopt;
        }
        out.dropped_bytes = bytes.size();
        out.note = "stream cut inside the magic line; nothing recovered";
        return out;
    }
    if (bytes.compare(0, magic.size(), magic) != 0) {
        Fail(error, "not a SPUR stream (bad magic)");
        return std::nullopt;
    }
    size_t pos = magic.size();

    // Header frame.
    Frame frame;
    std::string why;
    if (pos >= bytes.size()) {
        out.note = "stream cut before the header frame; nothing recovered";
        return out;
    }
    switch (NextFrame(bytes, pos, &frame, &why)) {
      case FrameStatus::kTruncated:
        out.dropped_bytes = bytes.size() - pos;
        out.note = "stream cut inside the header frame; nothing recovered";
        return out;
      case FrameStatus::kCorrupt:
        Fail(error, "corrupt stream: " + why + " at byte " +
                        std::to_string(pos));
        return std::nullopt;
      case FrameStatus::kOk:
        break;
    }
    if (frame.tag != 'H') {
        Fail(error, "corrupt stream: first frame is not a header");
        return std::nullopt;
    }
    if (!ParseStreamHeader(frame.payload, &out.document.meta, &why)) {
        Fail(error, "corrupt stream header: " + why);
        return std::nullopt;
    }
    pos = frame.end;

    uint64_t digest = kFnvOffset;
    while (pos < bytes.size()) {
        const size_t frame_start = pos;
        switch (NextFrame(bytes, pos, &frame, &why)) {
          case FrameStatus::kTruncated:
            out.dropped_bytes = bytes.size() - frame_start;
            out.note = "truncated stream: recovered " +
                       std::to_string(out.document.records.size()) +
                       " record(s), dropped " +
                       std::to_string(out.dropped_bytes) +
                       " torn tail byte(s)";
            return out;
          case FrameStatus::kCorrupt:
            Fail(error, "corrupt stream: " + why + " at byte " +
                            std::to_string(frame_start));
            return std::nullopt;
          case FrameStatus::kOk:
            break;
        }
        if (frame.tag == 'H') {
            Fail(error, "corrupt stream: duplicate header frame at byte " +
                            std::to_string(frame_start));
            return std::nullopt;
        }
        if (frame.tag == 'R') {
            std::string parse_error;
            const std::optional<JsonValue> value =
                ParseJson(frame.payload, &parse_error);
            if (!value) {
                Fail(error, "corrupt record frame at byte " +
                                std::to_string(frame_start) + ": " +
                                parse_error);
                return std::nullopt;
            }
            stats::RunRecord record;
            if (!ParseRunRecord(*value, &record, &parse_error)) {
                Fail(error, "corrupt record frame at byte " +
                                std::to_string(frame_start) + ": " +
                                parse_error);
                return std::nullopt;
            }
            if (stats::JsonWriter::ToJson(record) != frame.payload) {
                Fail(error,
                     "record frame at byte " + std::to_string(frame_start) +
                         " does not round-trip (corrupt or foreign "
                         "producer)");
                return std::nullopt;
            }
            digest = StreamDigestMix(digest, frame.payload);
            out.document.records.push_back(std::move(record));
            pos = frame.end;
            continue;
        }

        // Trailer frame: verify and require it to be final.
        std::string parse_error;
        const std::optional<JsonValue> root =
            ParseJson(frame.payload, &parse_error);
        if (!root || !root->IsObject()) {
            Fail(error, "corrupt trailer: " +
                            (root ? std::string("not an object")
                                  : parse_error));
            return std::nullopt;
        }
        if (root->members().size() != 4) {
            Fail(error, "corrupt trailer: must have exactly records, "
                        "schema_version, shard and digest");
            return std::nullopt;
        }
        uint64_t count = 0;
        uint64_t version = 0;
        if (!HeaderUint(*root, "records", &count, &why) ||
            !HeaderUint(*root, "schema_version", &version, &why)) {
            Fail(error, "corrupt trailer: " + why);
            return std::nullopt;
        }
        if (version != static_cast<uint64_t>(stats::kSchemaVersion)) {
            Fail(error, "trailer claims unknown schema_version " +
                            std::to_string(version));
            return std::nullopt;
        }
        if (count != out.document.records.size()) {
            Fail(error, "trailer record count disagrees: trailer claims " +
                            std::to_string(count) + ", stream holds " +
                            std::to_string(out.document.records.size()));
            return std::nullopt;
        }
        const JsonValue* shard = root->Find("shard");
        stats::DocumentMeta trailer_meta;
        if (shard == nullptr ||
            !ParseShardHeader(*shard, &trailer_meta, &parse_error)) {
            Fail(error, "corrupt trailer: " +
                            (shard ? parse_error
                                   : std::string("missing 'shard'")));
            return std::nullopt;
        }
        if (trailer_meta.shard_index != out.document.meta.shard_index ||
            trailer_meta.shard_count != out.document.meta.shard_count) {
            Fail(error, "trailer shard " +
                            std::to_string(trailer_meta.shard_index) + "/" +
                            std::to_string(trailer_meta.shard_count) +
                            " disagrees with header shard " +
                            std::to_string(out.document.meta.shard_index) +
                            "/" +
                            std::to_string(out.document.meta.shard_count));
            return std::nullopt;
        }
        if (out.document.records.size() < trailer_meta.ran_cells) {
            Fail(error, "trailer claims more ran_cells than the stream "
                        "holds records");
            return std::nullopt;
        }
        const JsonValue* digest_field = root->Find("digest");
        if (digest_field == nullptr || !digest_field->IsString()) {
            Fail(error, "corrupt trailer: 'digest' must be a string");
            return std::nullopt;
        }
        if (digest_field->AsString() != DigestHex(digest)) {
            Fail(error, "content digest mismatch: trailer has " +
                            digest_field->AsString() + ", records hash "
                            "to " + DigestHex(digest) +
                            " (corrupt records?)");
            return std::nullopt;
        }
        if (frame.end != bytes.size()) {
            Fail(error, "trailing bytes after the trailer frame");
            return std::nullopt;
        }
        out.document.meta.shard_index = trailer_meta.shard_index;
        out.document.meta.shard_count = trailer_meta.shard_count;
        out.document.meta.total_cells = trailer_meta.total_cells;
        out.document.meta.ran_cells = trailer_meta.ran_cells;
        out.complete = true;
        out.note = "complete stream: " +
                   std::to_string(out.document.records.size()) +
                   " record(s), trailer verified";
        return out;
    }
    out.note = "truncated stream (no trailer): recovered " +
               std::to_string(out.document.records.size()) + " record(s)";
    return out;
}

std::optional<RecoveredStream>
RecoverStreamFile(const std::string& path, std::string* error)
{
    FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        Fail(error, path + ": cannot open");
        return std::nullopt;
    }
    std::string contents;
    char buffer[1 << 16];
    size_t read = 0;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        contents.append(buffer, read);
    }
    const bool io_error = (std::ferror(file) != 0);
    std::fclose(file);
    if (io_error) {
        Fail(error, path + ": read error");
        return std::nullopt;
    }
    std::string recover_error;
    std::optional<RecoveredStream> recovered =
        RecoverStreamBytes(contents, &recover_error);
    if (!recovered) {
        Fail(error, path + ": " + recover_error);
    }
    return recovered;
}

}  // namespace spur::sweep

/**
 * @file
 * Deterministic shard assignment for distributed sweeps.
 *
 * A ShardSpec names one slice ("K/N") of an embarrassingly parallel
 * sweep: work unit i belongs to shard K of N iff i % N == K, where i is
 * the unit's position in the sweep's deterministic execution order (the
 * shuffled cell list for runner::RunMatrix, input order for RunAll).
 * Because every cell derives its seed from its identity alone
 * (runner::CellSeed), the union of the N shard outputs is bit-identical
 * to a single full run — that contract is what makes cross-process and
 * cross-machine splitting safe (tested in tests/sweep_test.cc).
 */
#ifndef SPUR_SWEEP_SHARD_H_
#define SPUR_SWEEP_SHARD_H_

#include <cstdint>
#include <optional>
#include <string>

namespace spur::sweep {

/** One slice of a sweep: shard @c index of @c count. */
struct ShardSpec {
    uint32_t index = 0;  ///< In [0, count).
    uint32_t count = 1;  ///< Total shards; 1 = the full sweep.

    /** True when this spec selects every work unit. */
    bool IsFull() const { return count <= 1; }

    /** True when work unit @p ordinal belongs to this shard. */
    bool Contains(uint64_t ordinal) const
    {
        return ordinal % ((count > 0) ? count : 1) == index;
    }

    /** "K/N" — the same syntax Parse accepts. */
    std::string ToString() const;

    /**
     * Parses "K/N" with 0 <= K < N and N >= 1 (e.g. "0/4").  Returns
     * nullopt on any other input, including stray characters.
     */
    static std::optional<ShardSpec> Parse(const std::string& text);
};

}  // namespace spur::sweep

#endif  // SPUR_SWEEP_SHARD_H_

#include "src/sweep/diff.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace spur::sweep {

namespace {

/** Telemetry cost of one cell, max-merged over duplicate identities. */
struct CellCost {
    double wall_seconds = 0.0;
    uint64_t peak_rss_bytes = 0;
    uint64_t refs_issued = 0;
    bool has_telemetry = false;

    /// Simulated references per wall second; 0 when unmeasurable.
    double RefsPerSecond() const
    {
        return (wall_seconds > 0.0)
                   ? static_cast<double>(refs_issued) / wall_seconds
                   : 0.0;
    }
};

/**
 * Indexes a document's records by cell identity.  A std::map keeps the
 * comparison and the report in sorted identity order.  Duplicate
 * identities (bespoke records each shard recomputes) keep the max cost,
 * mirroring CostTable's collision rule.
 */
std::map<std::string, CellCost>
IndexByIdentity(const SweepDocument& document)
{
    std::map<std::string, CellCost> cells;
    for (const stats::RunRecord& record : document.records) {
        CellCost& cost = cells[RecordIdentity(record)];
        if (!record.telemetry.has_value()) {
            continue;
        }
        cost.has_telemetry = true;
        cost.wall_seconds =
            std::max(cost.wall_seconds, record.telemetry->wall_seconds);
        cost.peak_rss_bytes =
            std::max(cost.peak_rss_bytes, record.telemetry->peak_rss_bytes);
        cost.refs_issued = std::max(cost.refs_issued, record.refs_issued);
    }
    return cells;
}

/** True when @p now exceeds @p base by more than @p threshold. */
bool
Regressed(double base, double now, double threshold)
{
    return base > 0.0 && now > base * (1.0 + threshold);
}

std::string
Seconds(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
    return buffer;
}

std::string
Mebibytes(uint64_t bytes)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.1f",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
    return buffer;
}

std::string
RefsPerSecond(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
}

std::string
GrowthPercent(double base, double now)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%",
                  (base > 0.0) ? (now / base - 1.0) * 100.0 : 0.0);
    return buffer;
}

}  // namespace

TelemetryDiff
DiffTelemetry(const SweepDocument& base, const SweepDocument& current,
              const DiffOptions& options)
{
    const std::map<std::string, CellCost> base_cells = IndexByIdentity(base);
    const std::map<std::string, CellCost> new_cells =
        IndexByIdentity(current);

    TelemetryDiff diff;
    for (const auto& [identity, base_cost] : base_cells) {
        const auto it = new_cells.find(identity);
        if (it == new_cells.end()) {
            ++diff.base_only;
            continue;
        }
        const CellCost& new_cost = it->second;
        if (!base_cost.has_telemetry || !new_cost.has_telemetry) {
            ++diff.missing_telemetry;
            continue;
        }
        ++diff.compared;
        diff.base_total_wall_seconds += base_cost.wall_seconds;
        diff.new_total_wall_seconds += new_cost.wall_seconds;

        CellDelta delta;
        delta.identity = identity;
        delta.base_wall_seconds = base_cost.wall_seconds;
        delta.new_wall_seconds = new_cost.wall_seconds;
        delta.base_peak_rss_bytes = base_cost.peak_rss_bytes;
        delta.new_peak_rss_bytes = new_cost.peak_rss_bytes;
        delta.wall_regressed =
            base_cost.wall_seconds >= options.min_wall_seconds &&
            Regressed(base_cost.wall_seconds, new_cost.wall_seconds,
                      options.threshold);
        delta.rss_regressed = Regressed(
            static_cast<double>(base_cost.peak_rss_bytes),
            static_cast<double>(new_cost.peak_rss_bytes), options.threshold);
        delta.base_refs_per_second = base_cost.RefsPerSecond();
        delta.new_refs_per_second = new_cost.RefsPerSecond();
        // Throughput (fatal) check: the same min_wall_seconds noise
        // floor applies — a sub-floor cell's refs/sec is scheduler
        // jitter, not a measurement.
        delta.throughput_regressed =
            options.throughput_threshold > 0.0 &&
            base_cost.wall_seconds >= options.min_wall_seconds &&
            delta.base_refs_per_second > 0.0 &&
            delta.new_refs_per_second <
                delta.base_refs_per_second *
                    (1.0 - options.throughput_threshold);
        if (delta.wall_regressed || delta.rss_regressed ||
            delta.throughput_regressed) {
            diff.regressions.push_back(std::move(delta));
        }
    }
    for (const auto& entry : new_cells) {
        if (base_cells.find(entry.first) == base_cells.end()) {
            ++diff.new_only;
        }
    }
    // Map iteration already yields sorted identities.
    return diff;
}

bool
HasRegressions(const TelemetryDiff& diff)
{
    return !diff.regressions.empty();
}

bool
HasFatalRegressions(const TelemetryDiff& diff)
{
    for (const CellDelta& delta : diff.regressions) {
        if (delta.throughput_regressed) {
            return true;
        }
    }
    return false;
}

std::string
FormatDiffReport(const TelemetryDiff& diff, const DiffOptions& options)
{
    std::string out;
    for (const CellDelta& delta : diff.regressions) {
        out += delta.throughput_regressed ? "FATAL " : "REGRESSION ";
        out += delta.identity;
        out += ":";
        if (delta.throughput_regressed) {
            out += " throughput ";
            out += RefsPerSecond(delta.base_refs_per_second);
            out += " refs/s -> ";
            out += RefsPerSecond(delta.new_refs_per_second);
            out += " refs/s (";
            out += GrowthPercent(delta.base_refs_per_second,
                                 delta.new_refs_per_second);
            out += ")";
        }
        if (delta.wall_regressed) {
            out += " wall ";
            out += Seconds(delta.base_wall_seconds);
            out += "s -> ";
            out += Seconds(delta.new_wall_seconds);
            out += "s (";
            out += GrowthPercent(delta.base_wall_seconds,
                                 delta.new_wall_seconds);
            out += ")";
        }
        if (delta.rss_regressed) {
            out += " rss ";
            out += Mebibytes(delta.base_peak_rss_bytes);
            out += "MiB -> ";
            out += Mebibytes(delta.new_peak_rss_bytes);
            out += "MiB (";
            out += GrowthPercent(
                static_cast<double>(delta.base_peak_rss_bytes),
                static_cast<double>(delta.new_peak_rss_bytes));
            out += ")";
        }
        out += "\n";
    }

    char summary[256];
    std::snprintf(summary, sizeof(summary),
                  "diff-telemetry: %zu regression(s) at threshold +%.0f%% "
                  "(%zu cells compared, %zu base-only, %zu new-only, "
                  "%zu without telemetry); total wall %.3fs -> %.3fs\n",
                  diff.regressions.size(), options.threshold * 100.0,
                  diff.compared, diff.base_only, diff.new_only,
                  diff.missing_telemetry, diff.base_total_wall_seconds,
                  diff.new_total_wall_seconds);
    out += summary;
    if (options.throughput_threshold > 0.0) {
        size_t fatal = 0;
        for (const CellDelta& delta : diff.regressions) {
            fatal += delta.throughput_regressed ? 1 : 0;
        }
        char gate[128];
        std::snprintf(gate, sizeof(gate),
                      "throughput gate: %zu fatal cell(s) below -%.0f%% "
                      "refs/s\n",
                      fatal, options.throughput_threshold * 100.0);
        out += gate;
    }
    return out;
}

}  // namespace spur::sweep

#include "src/sweep/telemetry.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace spur::sweep {

uint64_t
PeakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) {
        return 0;
    }
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes.
    return static_cast<uint64_t>(usage.ru_maxrss);
#else
    // Linux and the BSDs report kilobytes.
    return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
    return 0;  // Portable fallback: telemetry reports "not measured".
#endif
}

}  // namespace spur::sweep

/**
 * @file
 * Reading, validating and merging sweep JSON documents (the files
 * stats::JsonWriter emits behind --json).
 *
 * Merge contract (DESIGN.md §12, enforced here and exercised by CI):
 * shard files of one sweep must agree on bench name, schema version,
 * shard count and total cell count; their shard indices must cover
 * 0..N-1 exactly once; and their ran-cell counts must sum to the total
 * (more = duplicated cells, fewer = missing cells).  Records are merged
 * into a canonical order (sorted by cell identity, then payload), so
 * merging the N shard files of a sweep yields the byte-identical
 * document to merging the single-process full run.  Records whose
 * telemetry-stripped payload is identical collapse to one — that is how
 * bespoke (non-matrix) records every shard recomputes deterministically
 * merge — while records that share a cell identity but disagree on
 * payload are rejected as incompatible runs.
 */
#ifndef SPUR_SWEEP_MERGE_H_
#define SPUR_SWEEP_MERGE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/stats/run_record.h"
#include "src/sweep/json.h"

namespace spur::sweep {

/** One parsed sweep document: header plus records. */
struct SweepDocument {
    int schema_version = stats::kSchemaVersion;
    stats::DocumentMeta meta;
    std::vector<stats::RunRecord> records;
};

/**
 * Parses and schema-validates one sweep document.  Rejects unknown
 * schema versions, missing or mistyped fields, and unknown keys (an
 * unknown key would be silently dropped by a merge — data loss).
 * Returns nullopt and sets *error (if non-null) on failure.
 */
std::optional<SweepDocument> ParseSweepDocument(const std::string& json,
                                                std::string* error);

/** Reads @p path ("-" = stdin) and parses it as a sweep document. */
std::optional<SweepDocument> LoadSweepFile(const std::string& path,
                                           std::string* error);

/**
 * Parses one record object — an element of a document's "records" array
 * or a stream record frame (src/sweep/stream.h) — with the same strict
 * schema validation ParseSweepDocument applies: unknown, missing,
 * duplicate or mistyped fields are errors.  False + *error on failure.
 */
bool ParseRunRecord(const JsonValue& value, stats::RunRecord* out,
                    std::string* error);

/**
 * Parses a shard-header object ({"index", "count", "total_cells",
 * "ran_cells"}) into @p meta, range-checking index < count and
 * ran_cells <= total_cells.  Shared by the document parser and the
 * stream trailer reader.  False + *error on failure.
 */
bool ParseShardHeader(const JsonValue& value, stats::DocumentMeta* meta,
                      std::string* error);

/**
 * Standalone shard-accounting check (`spur_sweep validate`): when
 * total_cells > 0, ran_cells must equal the size of this shard's slice
 * of the matrix, |{o < total_cells : o mod count == index}| — the count
 * BenchSession writes after running (or resuming) its whole slice.
 * Documents violating this historically passed `validate` and only
 * failed at merge time; this catches them standalone.  Not part of
 * ParseSweepDocument: partial documents (recovered streams, hand-cut
 * fixtures) are parseable, just not valid sweep outputs.  False +
 * *error on violation.
 */
bool ValidateShardAccounting(const SweepDocument& document,
                             std::string* error);

/**
 * The record's cell identity: workload, policies, memory size,
 * repetition and seed.  Two records of one sweep with equal identity
 * must be the same cell.
 */
std::string RecordIdentity(const stats::RunRecord& record);

/**
 * The record's full payload with telemetry stripped — the unit of
 * bit-identity for the shard-union contract (telemetry legitimately
 * differs between machines).
 */
std::string RecordPayload(const stats::RunRecord& record);

struct MergeOptions {
    /// Drop telemetry from the merged records, so documents produced
    /// with --telemetry can be byte-compared across shardings.
    bool strip_telemetry = false;
};

/**
 * Merges shard documents into one canonical full document (a single
 * input canonicalizes record order in place).  Returns nullopt and sets
 * *error on any contract violation listed in the file comment.
 */
std::optional<SweepDocument> MergeDocuments(
    std::vector<SweepDocument> documents, const MergeOptions& options,
    std::string* error);

/** Serializes @p document in stats::JsonWriter's format. */
std::string ToJson(const SweepDocument& document);

}  // namespace spur::sweep

#endif  // SPUR_SWEEP_MERGE_H_

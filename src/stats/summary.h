/**
 * @file
 * Summary statistics for repeated experiment runs (the paper ran five
 * repetitions of each data point in randomized order).
 */
#ifndef SPUR_STATS_SUMMARY_H_
#define SPUR_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace spur::stats {

/** Accumulates samples and reports mean / deviation / confidence. */
class Summary
{
  public:
    Summary() = default;

    /** Adds one observation. */
    void Add(double value);

    /** Number of observations. */
    size_t Count() const { return values_.size(); }

    /** Arithmetic mean (0 when empty). */
    double Mean() const;

    /** Sample standard deviation (0 when fewer than 2 samples). */
    double StdDev() const;

    /** Half-width of the ~95% confidence interval on the mean, using the
     *  normal approximation (0 when fewer than 2 samples). */
    double Ci95() const;

    /** Smallest observation (0 when empty). */
    double Min() const;

    /** Largest observation (0 when empty). */
    double Max() const;

    /** All raw samples, in insertion order. */
    const std::vector<double>& values() const { return values_; }

  private:
    std::vector<double> values_;
};

}  // namespace spur::stats

#endif  // SPUR_STATS_SUMMARY_H_

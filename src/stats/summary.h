/**
 * @file
 * Summary statistics for repeated experiment runs (the paper ran five
 * repetitions of each data point in randomized order).
 */
#ifndef SPUR_STATS_SUMMARY_H_
#define SPUR_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace spur::stats {

/** Accumulates samples and reports mean / deviation / confidence. */
class Summary
{
  public:
    Summary() = default;

    /** Adds one observation. */
    void Add(double value);

    /**
     * Summarizes a projection over a range — the one-liner that replaces
     * the ad-hoc mean/stddev loops the benches used to hand-roll:
     *
     *   const auto s = Summary::Over(results[i],
     *       [](const core::RunResult& r) { return r.page_ins; });
     */
    template <typename Range, typename Projection>
    static Summary Over(const Range& range, Projection&& projection)
    {
        Summary summary;
        for (const auto& item : range) {
            summary.Add(static_cast<double>(projection(item)));
        }
        return summary;
    }

    /** Number of observations. */
    size_t Count() const { return values_.size(); }

    /** Arithmetic mean (0 when empty). */
    double Mean() const;

    /** Sample standard deviation (0 when fewer than 2 samples). */
    double StdDev() const;

    /** Half-width of the 95% confidence interval on the mean: Student-t
     *  critical values for small samples (the paper's 5 repetitions give
     *  t = 2.776, not 1.96), normal approximation beyond the table
     *  (0 when fewer than 2 samples). */
    double Ci95() const;

    /** Smallest observation (0 when empty). */
    double Min() const;

    /** Largest observation (0 when empty). */
    double Max() const;

    /** All raw samples, in insertion order. */
    const std::vector<double>& values() const { return values_; }

  private:
    std::vector<double> values_;
};

}  // namespace spur::stats

#endif  // SPUR_STATS_SUMMARY_H_

#include "src/stats/run_record.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace spur::stats {

namespace {

/** Shortest-round-trip double literal; non-finite becomes null. */
std::string
NumberToJson(double value)
{
    if (!std::isfinite(value)) {
        return "null";
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    // "%.17g" can produce "nan"/"inf" only for non-finite, handled above.
    return buffer;
}

std::string
Quoted(const std::string& s)
{
    // Built up with += (not a single operator+ chain): GCC 12's -Wrestrict
    // misfires on `const char* + string&&` inlined through char_traits
    // (GCC PR 105329).
    std::string out = "\"";
    out += JsonWriter::Escape(s);
    out += '"';
    return out;
}

}  // namespace

std::string
JsonWriter::Escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::ToJson(const RunRecord& record)
{
    std::string out = "{";
    out += "\"bench\": " + Quoted(record.bench);
    out += ", \"workload\": " + Quoted(record.workload);
    out += ", \"dirty_policy\": " + Quoted(record.dirty_policy);
    out += ", \"ref_policy\": " + Quoted(record.ref_policy);
    out += ", \"memory_mb\": " + std::to_string(record.memory_mb);
    out += ", \"rep\": " + std::to_string(record.rep);
    out += ", \"seed\": " + std::to_string(record.seed);
    out += ", \"refs_issued\": " + std::to_string(record.refs_issued);
    out += ", \"page_ins\": " + std::to_string(record.page_ins);
    out += ", \"page_outs\": " + std::to_string(record.page_outs);
    out += ", \"elapsed_seconds\": " + NumberToJson(record.elapsed_seconds);
    out += ", \"metrics\": {";
    bool first = true;
    for (const auto& [name, value] : record.metrics) {
        if (!first) {
            out += ", ";
        }
        first = false;
        out += Quoted(name) + ": " + NumberToJson(value);
    }
    out += "}";
    if (record.telemetry) {
        out += ", \"telemetry\": {\"wall_seconds\": ";
        out += NumberToJson(record.telemetry->wall_seconds);
        out += ", \"peak_rss_bytes\": ";
        out += std::to_string(record.telemetry->peak_rss_bytes);
        out += ", \"worker\": ";
        out += std::to_string(record.telemetry->worker);
        out += "}";
    }
    out += "}";
    return out;
}

std::string
JsonWriter::ToJson(const DocumentMeta& meta,
                   const std::vector<RunRecord>& records)
{
    std::string out = "{\"schema_version\": ";
    out += std::to_string(kSchemaVersion);
    out += ", \"bench\": " + Quoted(meta.bench);
    out += ", \"shard\": {\"index\": " + std::to_string(meta.shard_index);
    out += ", \"count\": " + std::to_string(meta.shard_count);
    out += ", \"total_cells\": " + std::to_string(meta.total_cells);
    out += ", \"ran_cells\": " + std::to_string(meta.ran_cells);
    out += "}, \"records\": [";
    for (size_t i = 0; i < records.size(); ++i) {
        out += (i == 0) ? "\n  " : ",\n  ";
        out += ToJson(records[i]);
    }
    out += "\n]}\n";
    return out;
}

std::string
JsonWriter::ToJson(const std::string& bench,
                   const std::vector<RunRecord>& records)
{
    DocumentMeta meta;
    meta.bench = bench;
    return ToJson(meta, records);
}

bool
JsonWriter::WriteFile(const std::string& path, const DocumentMeta& meta,
                      const std::vector<RunRecord>& records)
{
    const std::string document = ToJson(meta, records);
    if (path == "-") {
        return std::fwrite(document.data(), 1, document.size(), stdout) ==
               document.size();
    }
    FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        return false;
    }
    const bool ok = std::fwrite(document.data(), 1, document.size(),
                                file) == document.size();
    return (std::fclose(file) == 0) && ok;
}

bool
JsonWriter::WriteFile(const std::string& path, const std::string& bench,
                      const std::vector<RunRecord>& records)
{
    DocumentMeta meta;
    meta.bench = bench;
    return WriteFile(path, meta, records);
}

}  // namespace spur::stats

#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>

namespace spur::stats {

void
Summary::Add(double value)
{
    values_.push_back(value);
}

double
Summary::Mean() const
{
    if (values_.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double v : values_) {
        sum += v;
    }
    return sum / static_cast<double>(values_.size());
}

double
Summary::StdDev() const
{
    if (values_.size() < 2) {
        return 0.0;
    }
    const double mean = Mean();
    double sq = 0.0;
    for (double v : values_) {
        sq += (v - mean) * (v - mean);
    }
    return std::sqrt(sq / static_cast<double>(values_.size() - 1));
}

namespace {

/** Two-sided 95% Student-t critical value for @p df degrees of freedom. */
double
T95(size_t df)
{
    // t-table, df = 1..30; beyond that the normal approximation is
    // within half a percent.
    static constexpr double kTable[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    constexpr size_t kTableSize = sizeof(kTable) / sizeof(kTable[0]);
    if (df == 0) {
        return 0.0;
    }
    if (df <= kTableSize) {
        return kTable[df - 1];
    }
    return 1.96;
}

}  // namespace

double
Summary::Ci95() const
{
    if (values_.size() < 2) {
        return 0.0;
    }
    return T95(values_.size() - 1) * StdDev() /
           std::sqrt(static_cast<double>(values_.size()));
}

double
Summary::Min() const
{
    if (values_.empty()) {
        return 0.0;
    }
    return *std::min_element(values_.begin(), values_.end());
}

double
Summary::Max() const
{
    if (values_.empty()) {
        return 0.0;
    }
    return *std::max_element(values_.begin(), values_.end());
}

}  // namespace spur::stats

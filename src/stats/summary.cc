#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>

namespace spur::stats {

void
Summary::Add(double value)
{
    values_.push_back(value);
}

double
Summary::Mean() const
{
    if (values_.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double v : values_) {
        sum += v;
    }
    return sum / static_cast<double>(values_.size());
}

double
Summary::StdDev() const
{
    if (values_.size() < 2) {
        return 0.0;
    }
    const double mean = Mean();
    double sq = 0.0;
    for (double v : values_) {
        sq += (v - mean) * (v - mean);
    }
    return std::sqrt(sq / static_cast<double>(values_.size() - 1));
}

double
Summary::Ci95() const
{
    if (values_.size() < 2) {
        return 0.0;
    }
    return 1.96 * StdDev() / std::sqrt(static_cast<double>(values_.size()));
}

double
Summary::Min() const
{
    if (values_.empty()) {
        return 0.0;
    }
    return *std::min_element(values_.begin(), values_.end());
}

double
Summary::Max() const
{
    if (values_.empty()) {
        return 0.0;
    }
    return *std::max_element(values_.begin(), values_.end());
}

}  // namespace spur::stats

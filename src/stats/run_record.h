/**
 * @file
 * Machine-readable experiment results.
 *
 * Every bench binary can emit its runs as JSON (--json=FILE) instead of
 * print-only tables, so the perf trajectory can be tracked by tooling.
 * A RunRecord is one observation — typically one (config, repetition)
 * cell of the experiment matrix — flattened to plain fields plus an
 * ordered list of bench-specific named metrics and, when requested
 * (--telemetry), the cell's wall-clock cost.
 *
 * Documents are stamped with kSchemaVersion and a shard header (which
 * slice of the sweep this file holds; see src/sweep/) so the spur_sweep
 * tool can validate files and merge per-shard outputs deterministically.
 */
#ifndef SPUR_STATS_RUN_RECORD_H_
#define SPUR_STATS_RUN_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace spur::stats {

/**
 * Version of the JSON document layout.  Bump on any change to the
 * document or record shape; spur_sweep rejects versions it does not
 * know (tests/sweep_test.cc round-trips the current shape).
 */
inline constexpr int kSchemaVersion = 1;

/** Wall-clock telemetry of one executed cell (omitted unless enabled). */
struct CellTelemetry {
    double wall_seconds = 0.0;    ///< Wall-clock duration of the cell.
    uint64_t peak_rss_bytes = 0;  ///< Process peak RSS when it finished.
    uint32_t worker = 0;          ///< 0-based worker-thread index.
};

/** One machine-readable run observation. */
struct RunRecord {
    std::string bench;         ///< Producing binary, e.g. "table_4_1_refbits".
    std::string workload;      ///< Workload name ("" when not applicable).
    std::string dirty_policy;  ///< Dirty-bit policy name ("" if n/a).
    std::string ref_policy;    ///< Reference-bit policy name ("" if n/a).
    uint32_t memory_mb = 0;
    uint32_t rep = 0;          ///< Repetition index within its config.
    uint64_t seed = 0;         ///< The seed the run actually used.
    uint64_t refs_issued = 0;
    uint64_t page_ins = 0;
    uint64_t page_outs = 0;
    double elapsed_seconds = 0.0;
    /// Bench-specific extras, kept ordered for byte-stable output.
    std::vector<std::pair<std::string, double>> metrics;
    /// Per-cell wall-clock telemetry; only set under --telemetry, so the
    /// default JSON stays byte-identical across job counts and machines.
    std::optional<CellTelemetry> telemetry;

    /** Appends one named metric. */
    void AddMetric(const std::string& name, double value)
    {
        metrics.emplace_back(name, value);
    }
};

/** Document-level header: producing bench plus sweep shard accounting. */
struct DocumentMeta {
    std::string bench;
    uint32_t shard_index = 0;   ///< This file's shard (0-based).
    uint32_t shard_count = 1;   ///< Total shards of the sweep (1 = full).
    /// Work units (matrix cells) in the *whole* sweep, and how many this
    /// document ran; 0/0 when the producer did not track cells.
    uint64_t total_cells = 0;
    uint64_t ran_cells = 0;
};

/** Serializes RunRecords as a JSON document. */
class JsonWriter
{
  public:
    /** JSON string escaping (quotes, backslashes, control characters). */
    static std::string Escape(const std::string& s);

    /** Renders one record as a flat JSON object. */
    static std::string ToJson(const RunRecord& record);

    /**
     * Renders the whole document:
     * {"schema_version": V, "bench": NAME, "shard": {...},
     *  "records": [ ... ]}.
     */
    static std::string ToJson(const DocumentMeta& meta,
                              const std::vector<RunRecord>& records);

    /** Convenience overload: full (unsharded, untracked) document. */
    static std::string ToJson(const std::string& bench,
                              const std::vector<RunRecord>& records);

    /**
     * Writes the document to @p path ("-" = stdout).  Returns false on
     * I/O failure.
     */
    static bool WriteFile(const std::string& path, const DocumentMeta& meta,
                          const std::vector<RunRecord>& records);

    /** Convenience overload: full (unsharded, untracked) document. */
    static bool WriteFile(const std::string& path, const std::string& bench,
                          const std::vector<RunRecord>& records);
};

}  // namespace spur::stats

#endif  // SPUR_STATS_RUN_RECORD_H_

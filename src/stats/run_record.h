/**
 * @file
 * Machine-readable experiment results.
 *
 * Every bench binary can emit its runs as JSON (--json=FILE) instead of
 * print-only tables, so the perf trajectory can be tracked by tooling.
 * A RunRecord is one observation — typically one (config, repetition)
 * cell of the experiment matrix — flattened to plain fields plus an
 * ordered list of bench-specific named metrics.
 */
#ifndef SPUR_STATS_RUN_RECORD_H_
#define SPUR_STATS_RUN_RECORD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spur::stats {

/** One machine-readable run observation. */
struct RunRecord {
    std::string bench;         ///< Producing binary, e.g. "table_4_1_refbits".
    std::string workload;      ///< Workload name ("" when not applicable).
    std::string dirty_policy;  ///< Dirty-bit policy name ("" if n/a).
    std::string ref_policy;    ///< Reference-bit policy name ("" if n/a).
    uint32_t memory_mb = 0;
    uint32_t rep = 0;          ///< Repetition index within its config.
    uint64_t seed = 0;         ///< The seed the run actually used.
    uint64_t refs_issued = 0;
    uint64_t page_ins = 0;
    uint64_t page_outs = 0;
    double elapsed_seconds = 0.0;
    /// Bench-specific extras, kept ordered for byte-stable output.
    std::vector<std::pair<std::string, double>> metrics;

    /** Appends one named metric. */
    void AddMetric(const std::string& name, double value)
    {
        metrics.emplace_back(name, value);
    }
};

/** Serializes RunRecords as a JSON document. */
class JsonWriter
{
  public:
    /** JSON string escaping (quotes, backslashes, control characters). */
    static std::string Escape(const std::string& s);

    /** Renders one record as a flat JSON object. */
    static std::string ToJson(const RunRecord& record);

    /**
     * Renders the whole document:
     * {"bench": NAME, "records": [ ... ]}.
     */
    static std::string ToJson(const std::string& bench,
                              const std::vector<RunRecord>& records);

    /**
     * Writes the document to @p path ("-" = stdout).  Returns false on
     * I/O failure.
     */
    static bool WriteFile(const std::string& path, const std::string& bench,
                          const std::vector<RunRecord>& records);
};

}  // namespace spur::stats

#endif  // SPUR_STATS_RUN_RECORD_H_

/**
 * @file
 * Severity / violation / report types for the invariant-audit subsystem.
 *
 * An audit pass inspects simulator state and records a Violation for every
 * property it finds broken.  Violations always name the *invariant* (the
 * registered pass name), the *policy pair* the machine was running, and,
 * where one is involved, the *page* — so a report line is actionable
 * without a debugger: "which rule, on which page, under which policy".
 */
#ifndef SPUR_CHECK_REPORT_H_
#define SPUR_CHECK_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace spur::check {

/** Sentinel for "no specific page involved". */
inline constexpr GlobalVpn kNoPage = ~GlobalVpn{0};

/** How bad a violated invariant is. */
enum class Severity : uint8_t {
    kWarning,  ///< Suspicious but not provably wrong (statistical checks).
    kError,    ///< A hard state-machine invariant is broken.
};

/** Returns "warning" / "error". */
const char* ToString(Severity severity);

/** One broken invariant instance. */
struct Violation {
    std::string invariant;  ///< Registered pass name ("cache-pte-dirty").
    Severity severity = Severity::kError;
    std::string policy;     ///< Policy pair, e.g. "FAULT/MISS".
    GlobalVpn vpn = kNoPage; ///< Page involved, kNoPage when not page-level.
    std::string detail;     ///< Human-readable specifics.
};

/** Renders a violation as a single report line. */
std::string ToString(const Violation& violation);

/** The outcome of running one or more audit passes. */
class AuditReport
{
  public:
    AuditReport() = default;

    /** Notes that pass @p name ran (even if it found nothing). */
    void BeginPass(const std::string& name);

    /** Records a violation. */
    void Add(Violation violation);

    /** Convenience: record a violation against the current pass. */
    void Add(Severity severity, const std::string& policy, GlobalVpn vpn,
             std::string detail);

    /** True when no kError violations were recorded. */
    bool ok() const { return num_errors_ == 0; }

    /** All recorded violations, in detection order. */
    const std::vector<Violation>& violations() const { return violations_; }

    /** Names of the passes that ran, in order. */
    const std::vector<std::string>& passes() const { return passes_; }

    size_t NumErrors() const { return num_errors_; }
    size_t NumWarnings() const { return num_warnings_; }

    /** Violations recorded against pass @p invariant. */
    size_t CountFor(const std::string& invariant) const;

    /** Multi-line human-readable summary (one line per violation). */
    std::string Summary() const;

    /** Merges @p other's passes and violations into this report. */
    void Merge(const AuditReport& other);

    /**
     * Panics with the full summary when the report contains errors;
     * @p where names the audit point for the message.  Warnings are
     * printed with Warn() but do not terminate.
     */
    void RaiseIfFailed(const std::string& where) const;

  private:
    std::vector<Violation> violations_;
    std::vector<std::string> passes_;
    size_t num_errors_ = 0;
    size_t num_warnings_ = 0;
};

}  // namespace spur::check

#endif  // SPUR_CHECK_REPORT_H_

#include "src/check/report.h"

#include <sstream>

#include "src/common/log.h"

namespace spur::check {

const char*
ToString(Severity severity)
{
    switch (severity) {
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
    }
    return "?";
}

std::string
ToString(const Violation& violation)
{
    std::ostringstream out;
    out << ToString(violation.severity) << " [" << violation.invariant
        << "] policy=" << violation.policy;
    if (violation.vpn != kNoPage) {
        out << " page=0x" << std::hex << violation.vpn << std::dec;
    }
    out << ": " << violation.detail;
    return out.str();
}

void
AuditReport::BeginPass(const std::string& name)
{
    passes_.push_back(name);
}

void
AuditReport::Add(Violation violation)
{
    if (violation.severity == Severity::kError) {
        ++num_errors_;
    } else {
        ++num_warnings_;
    }
    violations_.push_back(std::move(violation));
}

void
AuditReport::Add(Severity severity, const std::string& policy, GlobalVpn vpn,
                 std::string detail)
{
    Violation violation;
    violation.invariant = passes_.empty() ? "<unregistered>" : passes_.back();
    violation.severity = severity;
    violation.policy = policy;
    violation.vpn = vpn;
    violation.detail = std::move(detail);
    Add(std::move(violation));
}

size_t
AuditReport::CountFor(const std::string& invariant) const
{
    size_t count = 0;
    for (const Violation& violation : violations_) {
        if (violation.invariant == invariant) {
            ++count;
        }
    }
    return count;
}

std::string
AuditReport::Summary() const
{
    std::ostringstream out;
    out << "audit: " << passes_.size() << " passes, " << num_errors_
        << " errors, " << num_warnings_ << " warnings";
    for (const Violation& violation : violations_) {
        out << "\n  " << ToString(violation);
    }
    return out.str();
}

void
AuditReport::Merge(const AuditReport& other)
{
    passes_.insert(passes_.end(), other.passes_.begin(),
                   other.passes_.end());
    for (const Violation& violation : other.violations_) {
        Add(violation);
    }
}

void
AuditReport::RaiseIfFailed(const std::string& where) const
{
    if (num_warnings_ != 0 && num_errors_ == 0) {
        Warn("audit at " + where + ": " + Summary());
    }
    if (num_errors_ != 0) {
        Panic("audit failed at " + where + ": " + Summary());
    }
}

}  // namespace spur::check

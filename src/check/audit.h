/**
 * @file
 * Compile-time switch for the invariant-audit hooks.
 *
 * The audit passes themselves (checker.h) always compile and are always
 * callable — tests exercise them in every build.  What this flag controls
 * is whether the *hot-path hooks* sprinkled through core::SpurSystem,
 * core::MpSpurSystem, core::RunOnce and runner::RunMatrix run: call sites
 * are written `if constexpr (check::kAuditEnabled)` so a release build
 * (`-DSPUR_AUDIT=OFF`, the default) folds them away to literally nothing.
 *
 * Enable with `cmake -DSPUR_AUDIT=ON` or the `audit` CMake preset.
 */
#ifndef SPUR_CHECK_AUDIT_H_
#define SPUR_CHECK_AUDIT_H_

#include <cstdint>

namespace spur::check {

#if defined(SPUR_AUDIT) && SPUR_AUDIT
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

/**
 * Accesses between periodic in-run audits.  Full-state audits walk every
 * cache line and PTE, so running one per access would dominate runtime
 * even in audit builds; one per interval still catches corruption within
 * a bounded window while keeping audit runs usable.
 */
inline constexpr uint64_t kAuditAccessInterval = 1u << 16;

}  // namespace spur::check

#endif  // SPUR_CHECK_AUDIT_H_

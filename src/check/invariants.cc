#include "src/check/invariants.h"

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

namespace spur::check {

namespace {

/** Formats a hex address for violation details. */
std::string
Hex(uint64_t value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

/** Shared per-line iteration: calls @p fn for every valid line whose
 *  block lies outside the PTE array, with the owning vpn resolved. */
template <typename Fn>
void
ForEachUserLine(const AuditContext& context, Fn&& fn)
{
    const unsigned page_shift = context.config->PageShift();
    for (size_t c = 0; c < context.caches.size(); ++c) {
        const cache::VirtualCache& vcache = *context.caches[c];
        for (uint64_t index = 0; index < vcache.NumLines(); ++index) {
            const cache::Line& line = vcache.LineAt(index);
            if (!line.valid()) {
                continue;
            }
            const GlobalAddr addr = vcache.BlockAddrOf(index, line);
            if (pt::PageTable::IsPteAddr(addr)) {
                continue;
            }
            fn(static_cast<unsigned>(c), addr, addr >> page_shift, line);
        }
    }
}

}  // namespace

bool
UsesProtectionEmulation(policy::DirtyPolicyKind kind)
{
    return kind == policy::DirtyPolicyKind::kFault ||
           kind == policy::DirtyPolicyKind::kFlush ||
           kind == policy::DirtyPolicyKind::kSpurProt;
}

bool
PolicyPageDirty(policy::DirtyPolicyKind kind, const pt::Pte& pte)
{
    return UsesProtectionEmulation(kind) ? pte.soft_dirty() : pte.dirty();
}

// Runtime face of model invariant M8 (src/model/invariants.h): no
// cached copy of a non-resident page.
void
CheckCacheResidency(const AuditContext& context, AuditReport& report)
{
    const std::string policy = context.PolicyLabel();
    ForEachUserLine(context, [&](unsigned cpu, GlobalAddr addr,
                                 GlobalVpn vpn, const cache::Line& line) {
        (void)line;
        const pt::Pte* pte = context.table->Find(vpn);
        if (pte == nullptr || !pte->valid()) {
            report.Add(Severity::kError, policy, vpn,
                       "cache " + std::to_string(cpu) + " holds block " +
                           Hex(addr) +
                           " of a non-resident page (reclaim missed a "
                           "flush)");
        }
    });
}

// Runtime face of model invariants M5 (P never ahead of D) and M4 (no
// lost dirty bit) — src/model/invariants.h.
void
CheckCacheDirtyCoherence(const AuditContext& context, AuditReport& report)
{
    const std::string policy = context.PolicyLabel();
    ForEachUserLine(context, [&](unsigned cpu, GlobalAddr addr,
                                 GlobalVpn vpn, const cache::Line& line) {
        const pt::Pte* pte = context.table->Find(vpn);
        if (pte == nullptr || !pte->valid()) {
            return;  // cache-resident reports this one.
        }
        // The cached P bit is a copy of the PTE D bit taken at fill or
        // refresh time; it may lag (stale) but must never run ahead: a
        // set P with a clear D means a write went unrecorded, which is
        // exactly the data loss the paper's machinery exists to prevent.
        if (line.page_dirty && !pte->dirty()) {
            report.Add(Severity::kError, policy, vpn,
                       "cache " + std::to_string(cpu) + " block " +
                           Hex(addr) +
                           " caches page-dirty=1 but the PTE D bit is "
                           "clear");
        }
        // A modified block (B set) means the page took a write while this
        // block was resident, so the policy's dirty record must exist by
        // the time the write completed (PAPER.md Section 3: the fault or
        // check happens *before* the store retires).
        if (line.block_dirty && !PolicyPageDirty(context.dirty, *pte)) {
            report.Add(Severity::kError, policy, vpn,
                       "cache " + std::to_string(cpu) + " block " +
                           Hex(addr) +
                           " is block-dirty but the page is clean under " +
                           policy::ToString(context.dirty));
        }
    });
}

// Runtime face of model invariant M6 (src/model/invariants.h).
void
CheckProtectionEmulation(const AuditContext& context, AuditReport& report)
{
    if (!UsesProtectionEmulation(context.dirty)) {
        return;  // Hardware dirty bits: nothing emulated, nothing to audit.
    }
    const std::string policy = context.PolicyLabel();

    // PTE side: a page that is writable by intent but still clean must be
    // mapped read-only — a read-write mapping on a clean page means the
    // first write would NOT fault and the modification would be lost
    // (PAPER.md Section 3, the FAULT/FLUSH emulation contract).
    context.table->ForEachPte([&](GlobalVpn vpn, const pt::Pte& pte) {
        if (!pte.valid() || !pte.writable_intent() || pte.soft_dirty()) {
            return;
        }
        if (pte.protection() == Protection::kReadWrite) {
            report.Add(Severity::kError, policy, vpn,
                       "clean page is mapped read-write; the dirty "
                       "emulation would miss its first write");
        }
    });

    // Cache side: a cached read-write PR copy is only legal once the PTE
    // itself was upgraded (the upgrade happens inside the fault handler,
    // before any line's PR is refreshed).
    ForEachUserLine(context, [&](unsigned cpu, GlobalAddr addr,
                                 GlobalVpn vpn, const cache::Line& line) {
        if (line.prot != Protection::kReadWrite) {
            return;
        }
        const pt::Pte* pte = context.table->Find(vpn);
        if (pte == nullptr || !pte->valid()) {
            return;  // cache-resident reports this one.
        }
        if (pte->protection() != Protection::kReadWrite) {
            report.Add(Severity::kError, policy, vpn,
                       "cache " + std::to_string(cpu) + " block " +
                           Hex(addr) +
                           " caches read-write protection ahead of the "
                           "PTE");
        }
    });
}

void
CheckFrameResidency(const AuditContext& context, AuditReport& report)
{
    const std::string policy = context.PolicyLabel();
    const mem::FrameTable& frames = *context.frames;

    // Forward: every bound frame's page must have a valid PTE pointing
    // back at exactly that frame, and no two frames may claim one page.
    std::unordered_map<GlobalVpn, FrameNum> frame_of;
    for (FrameNum f = frames.FirstPageable(); f < frames.NumTotal(); ++f) {
        const GlobalVpn vpn = frames.VpnOf(f);
        if (vpn == mem::kNoVpn) {
            continue;
        }
        const auto [it, inserted] = frame_of.emplace(vpn, f);
        if (!inserted) {
            report.Add(Severity::kError, policy, vpn,
                       "page bound to two frames (" +
                           std::to_string(it->second) + " and " +
                           std::to_string(f) + ")");
        }
        const pt::Pte* pte = context.table->Find(vpn);
        if (pte == nullptr || !pte->valid()) {
            report.Add(Severity::kError, policy, vpn,
                       "frame " + std::to_string(f) +
                           " is bound but the page has no valid PTE");
        } else if (pte->pfn() != f) {
            report.Add(Severity::kError, policy, vpn,
                       "frame " + std::to_string(f) +
                           " is bound but the PTE points at frame " +
                           std::to_string(pte->pfn()));
        }
    }

    // Reverse: every valid PTE's frame must reverse-map to its page and
    // lie in the pageable range.
    context.table->ForEachPte([&](GlobalVpn vpn, const pt::Pte& pte) {
        if (!pte.valid()) {
            return;
        }
        const FrameNum f = pte.pfn();
        if (f < frames.FirstPageable() || f >= frames.NumTotal()) {
            report.Add(Severity::kError, policy, vpn,
                       "valid PTE names out-of-range frame " +
                           std::to_string(f));
            return;
        }
        if (frames.VpnOf(f) != vpn) {
            report.Add(Severity::kError, policy, vpn,
                       "valid PTE's frame " + std::to_string(f) +
                           " reverse-maps to a different page");
        }
    });
}

void
CheckFrameFreeList(const AuditContext& context, AuditReport& report)
{
    const std::string policy = context.PolicyLabel();
    const mem::FrameTable& frames = *context.frames;

    std::vector<bool> on_free_list(frames.NumTotal(), false);
    for (const FrameNum f : frames.FreeList()) {
        if (f < frames.FirstPageable() || f >= frames.NumTotal()) {
            report.Add(Severity::kError, policy, kNoPage,
                       "free list holds out-of-range frame " +
                           std::to_string(f));
            continue;
        }
        if (on_free_list[f]) {
            report.Add(Severity::kError, policy, kNoPage,
                       "frame " + std::to_string(f) +
                           " appears on the free list twice");
        }
        on_free_list[f] = true;
        if (frames.IsAllocated(f)) {
            report.Add(Severity::kError, policy, kNoPage,
                       "frame " + std::to_string(f) +
                           " is both free and allocated");
        }
        if (frames.VpnOf(f) != mem::kNoVpn) {
            report.Add(Severity::kError, policy, frames.VpnOf(f),
                       "free frame " + std::to_string(f) +
                           " is still bound to a page");
        }
    }
    // Conservation: every pageable frame is either free or allocated.
    for (FrameNum f = frames.FirstPageable(); f < frames.NumTotal(); ++f) {
        if (!on_free_list[f] && !frames.IsAllocated(f)) {
            report.Add(Severity::kError, policy, kNoPage,
                       "frame " + std::to_string(f) +
                           " is neither free nor allocated (leaked)");
        }
    }
}

void
CheckBackingStoreCounts(const AuditContext& context, AuditReport& report)
{
    if (context.store == nullptr || context.events == nullptr) {
        return;
    }
    const std::string policy = context.PolicyLabel();
    const uint64_t event_outs =
        context.events->Get(sim::Event::kPageOutDirty);
    if (event_outs != context.store->NumPageOuts()) {
        report.Add(Severity::kError, policy, kNoPage,
                   "page-out events (" + std::to_string(event_outs) +
                       ") disagree with backing-store writes (" +
                       std::to_string(context.store->NumPageOuts()) + ")");
    }
    const uint64_t event_ins = context.events->Get(sim::Event::kPageIn);
    if (event_ins != context.store->NumPageIns()) {
        report.Add(Severity::kError, policy, kNoPage,
                   "page-in events (" + std::to_string(event_ins) +
                       ") disagree with backing-store reads (" +
                       std::to_string(context.store->NumPageIns()) + ")");
    }
}

// Runtime face of model invariant M7 (src/model/invariants.h).
void
CheckRefFlushHygiene(const AuditContext& context, AuditReport& report)
{
    if (context.ref != policy::RefPolicyKind::kRef) {
        return;  // Only REF promises flush-on-clear.
    }
    const std::string policy = context.PolicyLabel();
    // REF clears a reference bit by flushing the page from every cache,
    // so the next touch misses and re-sets the bit (PAPER.md Section 4).
    // A resident block on a clear-R page means a reference will hit in
    // the cache without ever informing the PTE — the replacement daemon
    // would evict a genuinely active page.
    ForEachUserLine(context, [&](unsigned cpu, GlobalAddr addr,
                                 GlobalVpn vpn, const cache::Line& line) {
        (void)line;
        const pt::Pte* pte = context.table->Find(vpn);
        if (pte == nullptr || !pte->valid() || pte->referenced()) {
            return;
        }
        report.Add(Severity::kError, policy, vpn,
                   "cache " + std::to_string(cpu) + " still holds block " +
                       Hex(addr) +
                       " of a page whose reference bit was cleared");
    });
}

// Runtime face of model invariants M1 (one owner), M2 (exclusive
// means alone) and M3 (a dirty block has an owner) —
// src/model/invariants.h.
void
CheckMpCoherency(const AuditContext& context, AuditReport& report)
{
    if (context.caches.size() < 2) {
        return;  // Uniprocessor: the protocol degenerates, nothing to audit.
    }
    const std::string policy = context.PolicyLabel();

    struct BlockState {
        unsigned copies = 0;
        unsigned owners = 0;
        unsigned exclusive = 0;
        unsigned first_cpu = 0;
    };
    std::unordered_map<GlobalAddr, BlockState> blocks;
    const unsigned page_shift = context.config->PageShift();
    for (size_t c = 0; c < context.caches.size(); ++c) {
        const cache::VirtualCache& vcache = *context.caches[c];
        for (uint64_t index = 0; index < vcache.NumLines(); ++index) {
            const cache::Line& line = vcache.LineAt(index);
            if (!line.valid()) {
                continue;
            }
            // M3: only an owner may hold modified data — a block-dirty
            // UnOwned copy is data the bus would never write back.
            if (line.block_dirty &&
                line.state != cache::CoherencyState::kOwnedShared &&
                line.state != cache::CoherencyState::kOwnedExclusive) {
                const GlobalAddr dirty_addr = vcache.BlockAddrOf(index, line);
                report.Add(Severity::kError, policy,
                           pt::PageTable::IsPteAddr(dirty_addr)
                               ? kNoPage
                               : (dirty_addr >> page_shift),
                           "cache " + std::to_string(c) + " block " +
                               Hex(dirty_addr) +
                               " is block-dirty without ownership (the "
                               "writeback would be lost)");
            }
            BlockState& state = blocks[vcache.BlockAddrOf(index, line)];
            if (state.copies == 0) {
                state.first_cpu = static_cast<unsigned>(c);
            }
            ++state.copies;
            if (line.state == cache::CoherencyState::kOwnedShared ||
                line.state == cache::CoherencyState::kOwnedExclusive) {
                ++state.owners;
            }
            if (line.state == cache::CoherencyState::kOwnedExclusive) {
                ++state.exclusive;
            }
        }
    }
    for (const auto& [addr, state] : blocks) {
        const GlobalVpn vpn = pt::PageTable::IsPteAddr(addr)
                                  ? kNoPage
                                  : (addr >> page_shift);
        if (state.owners > 1) {
            report.Add(Severity::kError, policy, vpn,
                       "block " + Hex(addr) + " has " +
                           std::to_string(state.owners) +
                           " owners (Berkeley Ownership allows one)");
        }
        if (state.exclusive > 0 && state.copies > 1) {
            report.Add(Severity::kError, policy, vpn,
                       "block " + Hex(addr) +
                           " is OwnedExclusive in cache " +
                           std::to_string(state.first_cpu) + " yet " +
                           std::to_string(state.copies - 1) +
                           " peer copies exist");
        }
    }
}

}  // namespace spur::check

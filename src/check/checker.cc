#include "src/check/checker.h"

#include "src/check/invariants.h"
#include "src/common/log.h"

namespace spur::check {

std::string
AuditContext::PolicyLabel() const
{
    std::string label = policy::ToString(dirty);
    label += '/';
    label += policy::ToString(ref);
    return label;
}

void
InvariantChecker::Register(std::string name, Pass pass)
{
    for (const auto& [existing, fn] : passes_) {
        if (existing == name) {
            Fatal("InvariantChecker: duplicate pass '" + name + "'");
        }
    }
    passes_.emplace_back(std::move(name), std::move(pass));
}

std::vector<std::string>
InvariantChecker::PassNames() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const auto& [name, fn] : passes_) {
        names.push_back(name);
    }
    return names;
}

AuditReport
InvariantChecker::Run(const AuditContext& context) const
{
    AuditReport report;
    for (const auto& [name, fn] : passes_) {
        report.BeginPass(name);
        fn(context, report);
    }
    return report;
}

AuditReport
InvariantChecker::RunOne(const std::string& name,
                         const AuditContext& context) const
{
    for (const auto& [pass_name, fn] : passes_) {
        if (pass_name == name) {
            AuditReport report;
            report.BeginPass(pass_name);
            fn(context, report);
            return report;
        }
    }
    Fatal("InvariantChecker: no pass named '" + name + "'");
}

InvariantChecker
InvariantChecker::WithBuiltinPasses()
{
    InvariantChecker checker;
    checker.Register(kPassCacheResident, CheckCacheResidency);
    checker.Register(kPassCachePteDirty, CheckCacheDirtyCoherence);
    checker.Register(kPassProtectionEmulation, CheckProtectionEmulation);
    checker.Register(kPassFrameTable, CheckFrameResidency);
    checker.Register(kPassFrameFreeList, CheckFrameFreeList);
    checker.Register(kPassBackingStore, CheckBackingStoreCounts);
    checker.Register(kPassRefFlush, CheckRefFlushHygiene);
    checker.Register(kPassMpCoherency, CheckMpCoherency);
    return checker;
}

const InvariantChecker&
InvariantChecker::Default()
{
    static const InvariantChecker checker = WithBuiltinPasses();
    return checker;
}

}  // namespace spur::check

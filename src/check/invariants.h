/**
 * @file
 * The built-in audit passes: each one encodes an invariant the paper's
 * argument depends on (see DESIGN.md "Machine-checked invariants" for the
 * table mapping passes to paper sections).
 *
 * Summary of what each pass asserts:
 *
 * | Pass                   | Invariant                                      |
 * |------------------------|------------------------------------------------|
 * | cache-resident         | Every valid non-PTE cache line belongs to a    |
 * |                        | resident page (reclaim always flushes first).  |
 * | cache-pte-dirty        | A cached P bit never runs ahead of the PTE's D |
 * |                        | bit, and a block-dirty line implies the page   |
 * |                        | is dirty under the running policy's notion.    |
 * | protection-emulation   | FAULT/FLUSH/SPUR-PROT: no writable mapping     |
 * |                        | (PTE or cached PR) on a clean page.            |
 * | frame-table            | Frame table and page table agree: every bound  |
 * |                        | frame has exactly one valid PTE pointing back. |
 * | frame-freelist         | Free-list bookkeeping is internally coherent.  |
 * | backing-store          | Page-out/-in event counts match the store's    |
 * |                        | I/O counters.                                  |
 * | ref-flush              | REF policy: a page whose R bit is clear has no |
 * |                        | resident cache blocks (the clear flushed them).|
 * | mp-coherency           | Berkeley Ownership: at most one owner per      |
 * |                        | block; an exclusive owner has no peers.        |
 *
 * Cross-policy dominance checks over finished experiment matrices live in
 * src/audit/dominance.h (they need run results, not machine state, and
 * so sit above src/core in the layer graph — see LAYERS.toml).
 */
#ifndef SPUR_CHECK_INVARIANTS_H_
#define SPUR_CHECK_INVARIANTS_H_

#include "src/check/checker.h"
#include "src/check/report.h"

namespace spur::check {

// Stable pass names (also the `invariant` field of violations).
inline constexpr const char* kPassCacheResident = "cache-resident";
inline constexpr const char* kPassCachePteDirty = "cache-pte-dirty";
inline constexpr const char* kPassProtectionEmulation =
    "protection-emulation";
inline constexpr const char* kPassFrameTable = "frame-table";
inline constexpr const char* kPassFrameFreeList = "frame-freelist";
inline constexpr const char* kPassBackingStore = "backing-store";
inline constexpr const char* kPassRefFlush = "ref-flush";
inline constexpr const char* kPassMpCoherency = "mp-coherency";

/** True when @p kind tracks page dirtiness via protection emulation
 *  (software dirty bit) rather than the hardware D bit. */
bool UsesProtectionEmulation(policy::DirtyPolicyKind kind);

/** The running policy's notion of "this page was modified". */
bool PolicyPageDirty(policy::DirtyPolicyKind kind, const pt::Pte& pte);

void CheckCacheResidency(const AuditContext& context, AuditReport& report);
void CheckCacheDirtyCoherence(const AuditContext& context,
                              AuditReport& report);
void CheckProtectionEmulation(const AuditContext& context,
                              AuditReport& report);
void CheckFrameResidency(const AuditContext& context, AuditReport& report);
void CheckFrameFreeList(const AuditContext& context, AuditReport& report);
void CheckBackingStoreCounts(const AuditContext& context,
                             AuditReport& report);
void CheckRefFlushHygiene(const AuditContext& context, AuditReport& report);
void CheckMpCoherency(const AuditContext& context, AuditReport& report);

}  // namespace spur::check

#endif  // SPUR_CHECK_INVARIANTS_H_

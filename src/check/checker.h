/**
 * @file
 * The InvariantChecker: a registry of audit passes that cross-validate
 * simulator state against the paper's state-machine invariants.
 *
 * A *pass* is a named function over an AuditContext — a read-only view of
 * one machine's caches, page table, frame table, backing store and policy
 * selection.  Passes record what they find in an AuditReport; they never
 * mutate state and never terminate the process themselves (the caller
 * decides, via AuditReport::RaiseIfFailed, whether a violation is fatal).
 *
 * The default checker (InvariantChecker::Default()) carries every built-in
 * pass from invariants.h.  Tests register bespoke passes on private
 * checker instances; the audit hooks in core/ and runner/ use the default.
 */
#ifndef SPUR_CHECK_CHECKER_H_
#define SPUR_CHECK_CHECKER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/cache/cache.h"
#include "src/check/report.h"
#include "src/common/types.h"
#include "src/mem/backing_store.h"
#include "src/mem/frame_table.h"
#include "src/policy/dirty_policy.h"
#include "src/policy/ref_policy.h"
#include "src/pt/page_table.h"
#include "src/sim/config.h"
#include "src/sim/events.h"
#include "src/vm/region.h"

namespace spur::check {

/**
 * Read-only view of one machine's auditable state.  Uniprocessors put
 * their single cache in `caches`; the multiprocessor lists all of them
 * (which additionally arms the cross-cache coherency pass).  Optional
 * members may be null; passes needing them skip silently.
 */
struct AuditContext {
    const sim::MachineConfig* config = nullptr;
    std::vector<const cache::VirtualCache*> caches;
    const pt::PageTable* table = nullptr;
    const mem::FrameTable* frames = nullptr;
    const mem::BackingStore* store = nullptr;   ///< Optional.
    const vm::RegionMap* regions = nullptr;     ///< Optional.
    const sim::EventCounts* events = nullptr;   ///< Optional.
    policy::DirtyPolicyKind dirty = policy::DirtyPolicyKind::kSpur;
    policy::RefPolicyKind ref = policy::RefPolicyKind::kMiss;

    /** "DIRTY/REF" label used in violation records. */
    std::string PolicyLabel() const;
};

/** A registry of named audit passes, run together over one context. */
class InvariantChecker
{
  public:
    using Pass = std::function<void(const AuditContext&, AuditReport&)>;

    InvariantChecker() = default;

    /** Registers @p pass under @p name (names must be unique). */
    void Register(std::string name, Pass pass);

    /** Number of registered passes. */
    size_t NumPasses() const { return passes_.size(); }

    /** Registered pass names, in registration order. */
    std::vector<std::string> PassNames() const;

    /** Runs every registered pass over @p context. */
    AuditReport Run(const AuditContext& context) const;

    /** Runs only the pass named @p name (fatal when unknown). */
    AuditReport RunOne(const std::string& name,
                       const AuditContext& context) const;

    /** A fresh checker holding every built-in pass (invariants.h). */
    static InvariantChecker WithBuiltinPasses();

    /** The shared default checker used by the audit hooks. */
    static const InvariantChecker& Default();

  private:
    std::vector<std::pair<std::string, Pass>> passes_;
};

}  // namespace spur::check

#endif  // SPUR_CHECK_CHECKER_H_

/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 *
 * Every helper here is total over its parameter types: the edge cases
 * that would be undefined behavior on a bare shift (shift counts >= 64)
 * are given defined results, and preconditions that cannot be made total
 * (zero input to FloorLog2, non-power-of-two alignment) are asserted.
 * All helpers are constexpr, so a violated precondition in a constant
 * expression is a compile error, not silent wraparound.
 */
#ifndef SPUR_COMMON_BITS_H_
#define SPUR_COMMON_BITS_H_

#include <cassert>
#include <cstdint>

namespace spur {

/** Returns true when @p value is a (nonzero) power of two. */
constexpr bool
IsPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Returns floor(log2(value)); @p value must be nonzero (asserted). */
constexpr unsigned
FloorLog2(uint64_t value)
{
    assert(value != 0 && "FloorLog2(0) is undefined");
    unsigned result = 0;
    while (value >>= 1) {
        ++result;
    }
    return result;
}

/**
 * Extracts bits [lo, lo+width) of @p value.  Bits beyond position 63
 * read as zero, so any (lo, width) pair is well-defined: lo >= 64
 * yields 0, width >= 64 clamps to the bits that exist.  A bare
 * `value >> lo` with lo >= 64 would be undefined behavior.
 */
constexpr uint64_t
ExtractBits(uint64_t value, unsigned lo, unsigned width)
{
    if (lo >= 64 || width == 0) {
        return 0;
    }
    const uint64_t shifted = value >> lo;
    if (width >= 64) {
        return shifted;
    }
    return shifted & ((uint64_t{1} << width) - 1);
}

/**
 * Returns @p value rounded up to the next multiple of @p align, which
 * must be a power of two (asserted).  If the rounded result does not
 * fit in 64 bits the addition wraps (well-defined for unsigned, but a
 * caller bug); every representable result is exact.
 */
constexpr uint64_t
AlignUp(uint64_t value, uint64_t align)
{
    assert(IsPowerOfTwo(align) && "AlignUp: align must be a power of two");
    return (value + (align - 1)) & ~(align - 1);
}

/** Returns @p value rounded down to a multiple of @p align, which must
 *  be a power of two (asserted). */
constexpr uint64_t
AlignDown(uint64_t value, uint64_t align)
{
    assert(IsPowerOfTwo(align) && "AlignDown: align must be a power of two");
    return value & ~(align - 1);
}

}  // namespace spur

#endif  // SPUR_COMMON_BITS_H_

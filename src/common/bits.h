/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */
#ifndef SPUR_COMMON_BITS_H_
#define SPUR_COMMON_BITS_H_

#include <cstdint>

namespace spur {

/** Returns true when @p value is a (nonzero) power of two. */
constexpr bool
IsPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Returns floor(log2(value)); @p value must be nonzero. */
constexpr unsigned
FloorLog2(uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1) {
        ++result;
    }
    return result;
}

/** Extracts bits [lo, lo+width) of @p value. */
constexpr uint64_t
ExtractBits(uint64_t value, unsigned lo, unsigned width)
{
    return (value >> lo) & ((width >= 64) ? ~uint64_t{0}
                                          : ((uint64_t{1} << width) - 1));
}

/** Returns @p value rounded up to the next multiple of @p align
 *  (a power of two). */
constexpr uint64_t
AlignUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Returns @p value rounded down to a multiple of @p align
 *  (a power of two). */
constexpr uint64_t
AlignDown(uint64_t value, uint64_t align)
{
    return value & ~(align - 1);
}

}  // namespace spur

#endif  // SPUR_COMMON_BITS_H_

/**
 * @file
 * Aligned ASCII table and CSV output, used by the bench harnesses to print
 * the paper's tables.
 */
#ifndef SPUR_COMMON_TABLE_H_
#define SPUR_COMMON_TABLE_H_

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace spur {

/**
 * Accumulates rows of string cells and renders them with aligned columns.
 *
 * Example:
 * @code
 *   Table t("Table 3.3: Event Frequencies");
 *   t.SetHeader({"Workload", "Size", "N_ds"});
 *   t.AddRow({"SLC", "5", "2349"});
 *   t.Print(stdout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::string title);

    /** Sets the column headers (defines the column count). */
    void SetHeader(std::vector<std::string> header);

    /** Appends a data row; short rows are padded with empty cells. */
    void AddRow(std::vector<std::string> row);

    /** Appends a horizontal separator line. */
    void AddSeparator();

    /** Renders the table with column alignment to @p out. */
    void Print(std::FILE* out) const;

    /** Renders the table as CSV (no separators, title as a comment). */
    void PrintCsv(std::FILE* out) const;

    /** Number of data rows added so far. */
    size_t NumRows() const { return rows_.size(); }

    /** Formats a double with @p decimals digits after the point. */
    static std::string Num(double value, int decimals = 2);

    /** Formats an integer count. */
    static std::string Num(uint64_t value);

    /** Formats a ratio as "(1.23)" like the paper's relative columns. */
    static std::string Rel(double value);

    /** Formats a percentage like "18%". */
    static std::string Pct(double fraction, int decimals = 0);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;  ///< Empty row = separator.
};

}  // namespace spur

#endif  // SPUR_COMMON_TABLE_H_

/**
 * @file
 * Minimal command-line flag parsing for the bench and example binaries.
 * Supports "--name=value", "--name value" and bare "--flag" booleans.
 */
#ifndef SPUR_COMMON_ARGS_H_
#define SPUR_COMMON_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spur {

/** Parsed command line. */
class Args
{
  public:
    Args(int argc, char** argv);

    /** True when --name was present (with or without a value). */
    bool Has(const std::string& name) const;

    /** String value of --name, or @p fallback. */
    std::string GetString(const std::string& name,
                          const std::string& fallback = "") const;

    /** Integer value of --name, or @p fallback. */
    int64_t GetInt(const std::string& name, int64_t fallback) const;

    /** Floating-point value of --name, or @p fallback. */
    double GetDouble(const std::string& name, double fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const
    {
        return positional_;
    }

    /** Program name (argv[0]). */
    const std::string& program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

// ---------------------------------------------------------------------------
// Flag helpers for the subcommand tools (spur_sweep, spur_lint,
// spur_model).  Those tools mix flags with positional file arguments, so
// the Args class is a poor fit: its "--name value" form would swallow
// positionals.  They instead scan their argument list and classify each
// entry with the helpers below.
// ---------------------------------------------------------------------------

/**
 * True iff @p arg is "--<name>=..." or exactly "--<name>".  On a match,
 * *value receives the text after '=' (empty for the bare form).
 */
bool MatchFlag(const std::string& arg, const std::string& name,
               std::string* value);

/** True iff @p arg is a flag ("--...") rather than a positional; the
 *  bare "-" stdin convention is a positional. */
bool IsFlagArg(const std::string& arg);

/** Parses a strictly positive floating-point value; false on garbage,
 *  trailing junk, or a non-positive result. */
bool ParsePositiveDouble(const std::string& text, double* out);

/** Parses a non-negative decimal/hex/octal integer; false on garbage,
 *  trailing junk, or overflow. */
bool ParseUnsigned(const std::string& text, uint64_t* out);

// ---------------------------------------------------------------------------
// Unified --help / usage rendering.  Every subcommand tool (spur_sweep,
// spur_lint, spur_model, spur_serve) declares its commands as data and
// renders them through FormatToolUsage, so flag docs line up the same
// way in every tool instead of each hand-wrapping its own string.
// ---------------------------------------------------------------------------

/** One documented flag of a subcommand. */
struct ToolFlag {
    std::string name;  ///< As typed, e.g. "--out=FILE".
    std::string doc;   ///< One-line description.
};

/** One subcommand of a tool. */
struct ToolCommand {
    std::string synopsis;  ///< E.g. "merge [options] FILE...".
    std::string summary;   ///< One-or-two-line description.
    std::vector<ToolFlag> flags;
};

/**
 * Renders the standard usage text: a "usage:" block listing every
 * synopsis, the overview, then one section per command with its
 * summary and aligned flag docs.
 */
std::string FormatToolUsage(const std::string& tool,
                            const std::string& overview,
                            const std::vector<ToolCommand>& commands);

}  // namespace spur

#endif  // SPUR_COMMON_ARGS_H_

/**
 * @file
 * Minimal command-line flag parsing for the bench and example binaries.
 * Supports "--name=value", "--name value" and bare "--flag" booleans.
 */
#ifndef SPUR_COMMON_ARGS_H_
#define SPUR_COMMON_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spur {

/** Parsed command line. */
class Args
{
  public:
    Args(int argc, char** argv);

    /** True when --name was present (with or without a value). */
    bool Has(const std::string& name) const;

    /** String value of --name, or @p fallback. */
    std::string GetString(const std::string& name,
                          const std::string& fallback = "") const;

    /** Integer value of --name, or @p fallback. */
    int64_t GetInt(const std::string& name, int64_t fallback) const;

    /** Floating-point value of --name, or @p fallback. */
    double GetDouble(const std::string& name, double fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const
    {
        return positional_;
    }

    /** Program name (argv[0]). */
    const std::string& program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

}  // namespace spur

#endif  // SPUR_COMMON_ARGS_H_

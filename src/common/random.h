/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Uses xoshiro256** (public-domain algorithm by Blackman & Vigna): fast,
 * high quality, and — unlike std::mt19937 — guaranteed to produce the same
 * sequence on every platform, which keeps experiments reproducible.
 */
#ifndef SPUR_COMMON_RANDOM_H_
#define SPUR_COMMON_RANDOM_H_

#include <cstdint>

namespace spur {

/** A small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seeds the generator; the same seed always yields the same stream. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit value. */
    uint64_t Next();

    /** Returns a uniformly distributed value in [0, bound). @p bound > 0. */
    uint64_t NextBelow(uint64_t bound);

    /** Returns a uniformly distributed double in [0, 1). */
    double NextDouble();

    /** Returns true with probability @p p (clamped to [0,1]). */
    bool Chance(double p);

    /**
     * Returns an index in [0, n) with a Zipf-like bias toward low indices.
     *
     * Used to model temporal locality of page reuse within a working set:
     * index 0 is the hottest entry.  @p skew in (0, 2]; larger is more
     * skewed.  Implemented by inverse-power transform of a uniform draw,
     * which is inexpensive and adequate for locality modelling.
     */
    uint64_t NextZipf(uint64_t n, double skew);

  private:
    uint64_t state_[4];
};

}  // namespace spur

#endif  // SPUR_COMMON_RANDOM_H_

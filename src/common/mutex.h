/**
 * @file
 * Capability-annotated synchronization primitives (DESIGN.md §13).
 *
 * Thin wrappers over <mutex> / <condition_variable> that carry the
 * Clang Thread Safety Analysis attributes — libstdc++'s std::mutex is
 * not a capability type, so GUARDED_BY declarations must name one of
 * these instead.  Zero overhead: every member is an inline forward to
 * the standard primitive, and the annotations vanish entirely on GCC.
 *
 * Condition waits deliberately have no predicate overload: a predicate
 * lambda is a separate function to the analysis and would need its own
 * REQUIRES annotation, which lambdas cannot carry portably.  Callers
 * write the standard wait loop instead, which the analysis checks
 * end to end:
 *
 *   MutexLock lock(mutex_);
 *   while (!ready_condition) {   // guarded reads, provably locked
 *       cv_.Wait(mutex_);
 *   }
 */
#ifndef SPUR_COMMON_MUTEX_H_
#define SPUR_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace spur {

/** A std::mutex the thread-safety analysis can reason about. */
class SPUR_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void Lock() SPUR_ACQUIRE() { mutex_.lock(); }
    void Unlock() SPUR_RELEASE() { mutex_.unlock(); }

    // BasicLockable spelling so CondVar (condition_variable_any) can
    // release and reacquire the mutex around a wait.
    void lock() SPUR_ACQUIRE() { mutex_.lock(); }
    void unlock() SPUR_RELEASE() { mutex_.unlock(); }

  private:
    std::mutex mutex_;
};

/** RAII lock for Mutex (std::lock_guard with scope annotations). */
class SPUR_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) SPUR_ACQUIRE(mutex)
      : mutex_(mutex)
    {
        mutex_.Lock();
    }

    ~MutexLock() SPUR_RELEASE() { mutex_.Unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mutex_;
};

/** Condition variable waiting on a Mutex (see the file comment). */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /**
     * Atomically releases @p mutex and blocks until notified; holds
     * @p mutex again on return.  Spurious wakeups happen — always call
     * from a while loop re-checking the guarded condition.
     */
    void Wait(Mutex& mutex) SPUR_REQUIRES(mutex) { cv_.wait(mutex); }

    /**
     * Wait() with a wakeup after at most @p timeout_ms milliseconds,
     * for callers that must re-check external state (a cancelled
     * client, a drain request) even when nobody notifies.  Spurious and
     * timeout wakeups are indistinguishable by design — always re-check
     * the guarded condition in a loop.  The timeout is scheduling, not
     * data: it can never influence result bytes, which is why this does
     * not count as a wall-clock read (DESIGN.md §13).
     */
    void WaitFor(Mutex& mutex, int timeout_ms) SPUR_REQUIRES(mutex)
    {
        cv_.wait_for(mutex, std::chrono::milliseconds(timeout_ms));
    }

    void NotifyOne() { cv_.notify_one(); }
    void NotifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

}  // namespace spur

#endif  // SPUR_COMMON_MUTEX_H_

/**
 * @file
 * Clang Thread Safety Analysis annotations (DESIGN.md §13).
 *
 * Under clang the macros expand to the attributes consumed by
 * -Wthread-safety, so lock-discipline violations — touching a
 * SPUR_GUARDED_BY member without holding its mutex, calling a
 * SPUR_REQUIRES function outside the lock, leaking a lock out of a
 * scope — are *compile errors* (the tree builds with -Werror and the
 * clang CI job enables -Wthread-safety).  Under GCC they expand to
 * nothing; the annotated code is plain C++.
 *
 * The attributes only understand capability types, and libstdc++'s
 * std::mutex is not one, so annotated code locks through the
 * spur::Mutex / spur::MutexLock / spur::CondVar wrappers in
 * src/common/mutex.h rather than <mutex> primitives directly.
 *
 * tests/thread_safety_fail.cc is a deliberately mis-locked translation
 * unit whose *failure* to compile under clang is asserted by a ctest
 * WILL_FAIL check, proving the analysis is actually armed.
 */
#ifndef SPUR_COMMON_THREAD_ANNOTATIONS_H_
#define SPUR_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SPUR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPUR_THREAD_ANNOTATION(x)  // GCC: annotations compile away.
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define SPUR_CAPABILITY(x) SPUR_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in its dtor. */
#define SPUR_SCOPED_CAPABILITY SPUR_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define SPUR_GUARDED_BY(x) SPUR_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define SPUR_PT_GUARDED_BY(x) SPUR_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only while holding the listed capabilities. */
#define SPUR_REQUIRES(...) \
    SPUR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities and returns holding them. */
#define SPUR_ACQUIRE(...) \
    SPUR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities before returning. */
#define SPUR_RELEASE(...) \
    SPUR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that must NOT be called while holding the listed capabilities. */
#define SPUR_EXCLUDES(...) SPUR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returning a reference to the capability protecting its result. */
#define SPUR_RETURN_CAPABILITY(x) SPUR_THREAD_ANNOTATION(lock_returned(x))

/** Lock-ordering hint: this capability is acquired after the listed ones. */
#define SPUR_ACQUIRED_AFTER(...) \
    SPUR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Lock-ordering hint: this capability is acquired before the listed ones. */
#define SPUR_ACQUIRED_BEFORE(...) \
    SPUR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Escape hatch: disables analysis inside one function body. */
#define SPUR_NO_THREAD_SAFETY_ANALYSIS \
    SPUR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SPUR_COMMON_THREAD_ANNOTATIONS_H_

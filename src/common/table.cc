#include "src/common/table.h"

#include <algorithm>
#include <cinttypes>

namespace spur {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::SetHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::AddRow(std::vector<std::string> row)
{
    if (row.empty()) {
        // An empty row is reserved as the separator marker; represent a
        // deliberately empty data row as one empty cell.
        row.push_back("");
    }
    rows_.push_back(std::move(row));
}

void
Table::AddSeparator()
{
    rows_.emplace_back();
}

void
Table::Print(std::FILE* out) const
{
    // Compute column widths over header and all rows.
    std::vector<size_t> widths;
    auto widen = [&widths](const std::vector<std::string>& row) {
        if (row.size() > widths.size()) {
            widths.resize(row.size(), 0);
        }
        for (size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    widen(header_);
    for (const auto& row : rows_) {
        widen(row);
    }

    size_t total = 0;
    for (size_t w : widths) {
        total += w + 3;
    }
    total = (total >= 2) ? total - 2 : total;

    auto print_rule = [&] {
        std::fprintf(out, "%s\n", std::string(total, '-').c_str());
    };
    auto print_row = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = (i < row.size()) ? row[i] : "";
            std::fprintf(out, "%-*s", static_cast<int>(widths[i]),
                         cell.c_str());
            if (i + 1 < widths.size()) {
                std::fprintf(out, " | ");
            }
        }
        std::fprintf(out, "\n");
    };

    if (!title_.empty()) {
        std::fprintf(out, "%s\n", title_.c_str());
    }
    print_rule();
    if (!header_.empty()) {
        print_row(header_);
        print_rule();
    }
    for (const auto& row : rows_) {
        if (row.empty()) {
            print_rule();
        } else {
            print_row(row);
        }
    }
    print_rule();
}

void
Table::PrintCsv(std::FILE* out) const
{
    auto print_row = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            // Cells never contain commas or quotes in our tables; quote
            // defensively if one ever does.
            const std::string& cell = row[i];
            if (cell.find_first_of(",\"\n") != std::string::npos) {
                std::string quoted = "\"";
                for (char c : cell) {
                    if (c == '"') {
                        quoted += '"';
                    }
                    quoted += c;
                }
                quoted += '"';
                std::fprintf(out, "%s", quoted.c_str());
            } else {
                std::fprintf(out, "%s", cell.c_str());
            }
            std::fputc(i + 1 < row.size() ? ',' : '\n', out);
        }
    };
    if (!title_.empty()) {
        std::fprintf(out, "# %s\n", title_.c_str());
    }
    if (!header_.empty()) {
        print_row(header_);
    }
    for (const auto& row : rows_) {
        if (!row.empty()) {
            print_row(row);
        }
    }
}

std::string
Table::Num(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
Table::Num(uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    return buf;
}

std::string
Table::Rel(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "(%.2f)", value);
    return buf;
}

std::string
Table::Pct(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

}  // namespace spur

#include "src/common/log.h"

#include <cstdio>
#include <cstdlib>

namespace spur {

namespace {
bool g_verbose = true;
}  // namespace

void
Fatal(const std::string& message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
Panic(const std::string& message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
Warn(const std::string& message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
Inform(const std::string& message)
{
    if (g_verbose) {
        std::fprintf(stderr, "info: %s\n", message.c_str());
    }
}

void
SetVerbose(bool verbose)
{
    g_verbose = verbose;
}

}  // namespace spur

#include "src/common/log.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace spur {

namespace {
// Serializes all log output: worker threads in the parallel runner may
// Warn()/Inform() concurrently, and interleaved fprintf bytes would
// garble the stream.  g_verbose is guarded by the same mutex — under
// clang -Wthread-safety an unlocked access is a compile error.
Mutex g_log_mutex;
bool g_verbose SPUR_GUARDED_BY(g_log_mutex) = true;
}  // namespace

void
Fatal(const std::string& message)
{
    {
        MutexLock lock(g_log_mutex);
        std::fprintf(stderr, "fatal: %s\n", message.c_str());
    }
    std::exit(1);
}

void
Panic(const std::string& message)
{
    {
        MutexLock lock(g_log_mutex);
        std::fprintf(stderr, "panic: %s\n", message.c_str());
    }
    std::abort();
}

void
Warn(const std::string& message)
{
    MutexLock lock(g_log_mutex);
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
Inform(const std::string& message)
{
    MutexLock lock(g_log_mutex);
    if (g_verbose) {
        std::fprintf(stderr, "info: %s\n", message.c_str());
    }
}

void
SetVerbose(bool verbose)
{
    MutexLock lock(g_log_mutex);
    g_verbose = verbose;
}

}  // namespace spur

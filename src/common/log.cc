#include "src/common/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace spur {

namespace {
// Serializes all log output: worker threads in the parallel runner may
// Warn()/Inform() concurrently, and interleaved fprintf bytes would
// garble the stream.  g_verbose is read under the same lock.
std::mutex g_log_mutex;
bool g_verbose = true;
}  // namespace

void
Fatal(const std::string& message)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::fprintf(stderr, "fatal: %s\n", message.c_str());
    }
    std::exit(1);
}

void
Panic(const std::string& message)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::fprintf(stderr, "panic: %s\n", message.c_str());
    }
    std::abort();
}

void
Warn(const std::string& message)
{
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
Inform(const std::string& message)
{
    std::lock_guard<std::mutex> lock(g_log_mutex);
    if (g_verbose) {
        std::fprintf(stderr, "info: %s\n", message.c_str());
    }
}

void
SetVerbose(bool verbose)
{
    std::lock_guard<std::mutex> lock(g_log_mutex);
    g_verbose = verbose;
}

}  // namespace spur

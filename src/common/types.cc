#include "src/common/types.h"

namespace spur {

const char*
ToString(AccessType type)
{
    switch (type) {
      case AccessType::kIFetch: return "ifetch";
      case AccessType::kRead: return "read";
      case AccessType::kWrite: return "write";
    }
    return "?";
}

const char*
ToString(Protection prot)
{
    switch (prot) {
      case Protection::kNone: return "none";
      case Protection::kReadOnly: return "ro";
      case Protection::kReadWrite: return "rw";
    }
    return "?";
}

}  // namespace spur

#include "src/common/args.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace spur {

Args::Args(int argc, char** argv)
{
    program_ = (argc > 0) ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            flags_[arg] = argv[++i];
        } else {
            flags_[arg] = "";
        }
    }
}

bool
Args::Has(const std::string& name) const
{
    return flags_.find(name) != flags_.end();
}

std::string
Args::GetString(const std::string& name, const std::string& fallback) const
{
    const auto it = flags_.find(name);
    return (it != flags_.end()) ? it->second : fallback;
}

int64_t
Args::GetInt(const std::string& name, int64_t fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) {
        return fallback;
    }
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Args::GetDouble(const std::string& name, double fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) {
        return fallback;
    }
    return std::strtod(it->second.c_str(), nullptr);
}

bool
MatchFlag(const std::string& arg, const std::string& name,
          std::string* value)
{
    if (arg.size() < name.size() + 2 || arg.compare(0, 2, "--") != 0 ||
        arg.compare(2, name.size(), name) != 0) {
        return false;
    }
    const size_t after = 2 + name.size();
    if (arg.size() == after) {
        value->clear();
        return true;
    }
    if (arg[after] != '=') {
        return false;
    }
    *value = arg.substr(after + 1);
    return true;
}

bool
IsFlagArg(const std::string& arg)
{
    return arg.size() > 1 && arg.rfind("--", 0) == 0;
}

bool
ParsePositiveDouble(const std::string& text, double* out)
{
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(value > 0.0)) {
        return false;
    }
    *out = value;
    return true;
}

bool
ParseUnsigned(const std::string& text, uint64_t* out)
{
    if (text.empty() || text[0] == '-') {
        return false;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        return false;
    }
    *out = value;
    return true;
}

std::string
FormatToolUsage(const std::string& tool, const std::string& overview,
                const std::vector<ToolCommand>& commands)
{
    std::string text = "usage: ";
    const std::string continuation(7, ' ');  // Aligns under "usage: ".
    for (size_t i = 0; i < commands.size(); ++i) {
        if (i > 0) {
            text += continuation;
        }
        text += tool;
        text += ' ';
        text += commands[i].synopsis;
        text += '\n';
    }
    if (!overview.empty()) {
        text += '\n';
        text += overview;
        text += '\n';
    }
    // Flag docs align on one column across the whole tool.
    size_t widest = 0;
    for (const ToolCommand& command : commands) {
        for (const ToolFlag& flag : command.flags) {
            widest = std::max(widest, flag.name.size());
        }
    }
    for (const ToolCommand& command : commands) {
        text += '\n';
        text += tool;
        text += ' ';
        text += command.synopsis;
        text += '\n';
        text += "  ";
        text += command.summary;
        text += '\n';
        for (const ToolFlag& flag : command.flags) {
            text += "    ";
            text += flag.name;
            text += std::string(widest - flag.name.size() + 2, ' ');
            text += flag.doc;
            text += '\n';
        }
    }
    return text;
}

}  // namespace spur

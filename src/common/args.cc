#include "src/common/args.h"

#include <cstdlib>

namespace spur {

Args::Args(int argc, char** argv)
{
    program_ = (argc > 0) ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            flags_[arg] = argv[++i];
        } else {
            flags_[arg] = "";
        }
    }
}

bool
Args::Has(const std::string& name) const
{
    return flags_.find(name) != flags_.end();
}

std::string
Args::GetString(const std::string& name, const std::string& fallback) const
{
    const auto it = flags_.find(name);
    return (it != flags_.end()) ? it->second : fallback;
}

int64_t
Args::GetInt(const std::string& name, int64_t fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) {
        return fallback;
    }
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Args::GetDouble(const std::string& name, double fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) {
        return fallback;
    }
    return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace spur

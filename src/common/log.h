/**
 * @file
 * Minimal logging / fatal-error helpers (gem5-style fatal vs. panic).
 *
 * - Fatal():  the *user's* fault (bad configuration); exits with code 1.
 * - Panic():  the *simulator's* fault (broken invariant); aborts.
 * - Warn()/Inform(): non-fatal status messages on stderr.
 *
 * All entry points are thread-safe: output is serialized by an internal
 * mutex so messages from parallel runner workers never interleave.
 */
#ifndef SPUR_COMMON_LOG_H_
#define SPUR_COMMON_LOG_H_

#include <string>

namespace spur {

/** Terminates with exit(1); use for invalid user configuration. */
[[noreturn]] void Fatal(const std::string& message);

/** Terminates with abort(); use for violated simulator invariants. */
[[noreturn]] void Panic(const std::string& message);

/** Prints a warning to stderr. */
void Warn(const std::string& message);

/** Prints an informational message to stderr. */
void Inform(const std::string& message);

/** Enables/disables Inform() output (default on). */
void SetVerbose(bool verbose);

}  // namespace spur

#endif  // SPUR_COMMON_LOG_H_

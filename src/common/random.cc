#include "src/common/random.h"

#include <cmath>

namespace spur {

namespace {

/** splitmix64, used to expand a single seed into the xoshiro state. */
uint64_t
SplitMix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr uint64_t
Rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto& word : state_) {
        word = SplitMix64(s);
    }
    // A state of all zeros would be a fixed point; splitmix cannot produce
    // four zero outputs from any seed, but be defensive anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
        state_[0] = 1;
    }
}

uint64_t
Rng::Next()
{
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);

    return result;
}

uint64_t
Rng::NextBelow(uint64_t bound)
{
    // Lemire's multiply-shift bounded draw; the slight modulo bias of the
    // plain form is irrelevant for workload synthesis, so we skip the
    // rejection step for speed.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<uint64_t>(product >> 64);
}

double
Rng::NextDouble()
{
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool
Rng::Chance(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return NextDouble() < p;
}

uint64_t
Rng::NextZipf(uint64_t n, double skew)
{
    if (n <= 1) {
        return 0;
    }
    // Power transform: floor(n * u^k) with k >= 1 concentrates mass near
    // index zero; k grows without bound as skew approaches 1.
    const double k = 1.0 / ((skew >= 0.95) ? 0.05 : (1.0 - skew));
    const double u = NextDouble();
    auto idx = static_cast<uint64_t>(static_cast<double>(n) * std::pow(u, k));
    return (idx >= n) ? (n - 1) : idx;
}

}  // namespace spur

/**
 * @file
 * Fundamental address and size types shared by every SPUR module.
 *
 * SPUR processes issue 32-bit virtual addresses.  The top two bits of a
 * process address select one of four segment registers, which map the
 * address into a larger *global* virtual address space shared by all
 * processes (this is how SPUR prevents virtual-address synonyms, see
 * [Hill86]).  The global space is what the virtual-address cache and the
 * page tables are indexed by, so global addresses are 64-bit here even
 * though the hardware used 38 bits.
 */
#ifndef SPUR_COMMON_TYPES_H_
#define SPUR_COMMON_TYPES_H_

#include <cstdint>

namespace spur {

/** A 32-bit per-process virtual address. */
using ProcessAddr = uint32_t;

/** A global virtual address (post segment mapping). */
using GlobalAddr = uint64_t;

/** A physical address. */
using PhysAddr = uint64_t;

/** A global virtual page number (GlobalAddr >> kPageShift). */
using GlobalVpn = uint64_t;

/** A physical frame number. */
using FrameNum = uint32_t;

/** Sentinel for "no frame". */
inline constexpr FrameNum kInvalidFrame = ~FrameNum{0};

/** Process identifier. */
using Pid = uint32_t;

/** Simulated time in CPU cycles. */
using Cycles = uint64_t;

/** The kind of processor memory reference. */
enum class AccessType : uint8_t {
    kIFetch = 0,  ///< Instruction fetch.
    kRead = 1,    ///< Processor load.
    kWrite = 2,   ///< Processor store.
};

/** A single memory reference as issued by a workload. */
struct MemRef {
    Pid pid = 0;
    ProcessAddr addr = 0;
    AccessType type = AccessType::kRead;
};

/** Page protection levels stored in PTEs and cached in cache lines. */
enum class Protection : uint8_t {
    kNone = 0,      ///< Invalid / kernel only.
    kReadOnly = 1,  ///< Loads and instruction fetches permitted.
    kReadWrite = 2, ///< All accesses permitted.
};

/** Returns a short human-readable name for an access type. */
const char* ToString(AccessType type);

/** Returns a short human-readable name for a protection level. */
const char* ToString(Protection prot);

}  // namespace spur

#endif  // SPUR_COMMON_TYPES_H_

#include "src/sim/timing.h"

namespace spur::sim {

const char*
ToString(TimeBucket bucket)
{
    switch (bucket) {
      case TimeBucket::kExecute: return "execute";
      case TimeBucket::kMissStall: return "miss_stall";
      case TimeBucket::kXlate: return "xlate";
      case TimeBucket::kFault: return "fault";
      case TimeBucket::kFlush: return "flush";
      case TimeBucket::kDirtyAux: return "dirty_aux";
      case TimeBucket::kPagingIo: return "paging_io";
      case TimeBucket::kKernel: return "kernel";
      case TimeBucket::kCount: break;
    }
    return "?";
}

Cycles
TimingModel::Total() const
{
    Cycles total = 0;
    for (Cycles cycles : buckets_) {
        total += cycles;
    }
    return total;
}

double
TimingModel::ElapsedSeconds() const
{
    return static_cast<double>(Total()) * config_.cpu_cycle_ns * 1e-9;
}

double
TimingModel::Seconds(TimeBucket bucket) const
{
    return static_cast<double>(Get(bucket)) * config_.cpu_cycle_ns * 1e-9;
}

}  // namespace spur::sim

/**
 * @file
 * Cycle accounting for the simulated machine.
 *
 * The paper reports elapsed wall-clock seconds on the 1.5 MIPS prototype;
 * we account simulated CPU cycles in labelled buckets (base execution,
 * cache-miss stalls, fault handlers, flush operations, paging I/O waits)
 * so experiments can report both a total elapsed time and its breakdown.
 */
#ifndef SPUR_SIM_TIMING_H_
#define SPUR_SIM_TIMING_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/common/types.h"
#include "src/sim/config.h"

namespace spur::sim {

/** Buckets the elapsed-time accounting is broken into. */
enum class TimeBucket : uint8_t {
    kExecute,    ///< Base per-reference execution cycles.
    kMissStall,  ///< Memory stalls for cache fills and writebacks.
    kXlate,      ///< In-cache translation work on misses.
    kFault,      ///< Software fault handlers (dirty / reference / page).
    kFlush,      ///< Cache flush operations.
    kDirtyAux,   ///< Dirty-bit misses and PTE dirty checks.
    kPagingIo,   ///< Blocking page-in I/O waits.
    kKernel,     ///< Other kernel work (daemon, page-out initiation).
    kCount,      ///< Keep last.
};

/** Number of time buckets. */
inline constexpr size_t kNumTimeBuckets =
    static_cast<size_t>(TimeBucket::kCount);

/** Returns a short stable name for a bucket. */
const char* ToString(TimeBucket bucket);

/** Accumulates simulated cycles per bucket and converts to seconds. */
class TimingModel
{
  public:
    explicit TimingModel(const MachineConfig& config) : config_(config) {}

    /** Charges @p cycles to @p bucket. */
    void Charge(TimeBucket bucket, Cycles cycles)
    {
        buckets_[static_cast<size_t>(bucket)] += cycles;
    }

    /** Cycles accumulated in @p bucket. */
    Cycles Get(TimeBucket bucket) const
    {
        return buckets_[static_cast<size_t>(bucket)];
    }

    /** Total cycles across all buckets. */
    Cycles Total() const;

    /** Total simulated elapsed seconds (cycles x CPU cycle time). */
    double ElapsedSeconds() const;

    /** Seconds attributable to @p bucket. */
    double Seconds(TimeBucket bucket) const;

    /** Zeroes every bucket. */
    void Reset() { buckets_.fill(0); }

    /** The machine configuration this model prices against. */
    const MachineConfig& config() const { return config_; }

  private:
    MachineConfig config_;
    std::array<Cycles, kNumTimeBuckets> buckets_{};
};

}  // namespace spur::sim

#endif  // SPUR_SIM_TIMING_H_

#include "src/sim/counters.h"

#include <string>

#include "src/common/log.h"

namespace spur::sim {

namespace {

/**
 * The four event sets, mirroring the groupings the paper describes: basic
 * reference/miss counts, translation performance, dirty/reference bit
 * machinery, and virtual-memory activity.  Unused slots hold Event::kCount.
 */
constexpr Event kModeTable[kNumCounterModes][kNumHwCounters] = {
    // Mode 0: processor references and cache behaviour.
    {Event::kIFetch, Event::kRead, Event::kWrite, Event::kIFetchMiss,
     Event::kReadMiss, Event::kWriteMiss, Event::kWriteback,
     Event::kBlockFlush, Event::kPageFlush, Event::kWriteHitCleanBlock,
     Event::kWriteMissFill, Event::kContextSwitch, Event::kCount,
     Event::kCount, Event::kCount, Event::kCount},
    // Mode 1: in-cache translation performance.
    {Event::kXlatePteHit, Event::kXlatePteMiss, Event::kXlateL2Access,
     Event::kIFetchMiss, Event::kReadMiss, Event::kWriteMiss,
     Event::kPageFault, Event::kPageIn, Event::kZeroFill, Event::kCount,
     Event::kCount, Event::kCount, Event::kCount, Event::kCount,
     Event::kCount, Event::kCount},
    // Mode 2: dirty- and reference-bit events (the Section 3/4 counters).
    {Event::kDirtyFault, Event::kDirtyFaultZfod, Event::kDirtyBitMiss,
     Event::kExcessFault, Event::kWriteHitCleanBlock, Event::kWriteMissFill,
     Event::kDirtyCheck, Event::kRefFault, Event::kRefClear,
     Event::kRefClearFlush, Event::kCount, Event::kCount, Event::kCount,
     Event::kCount, Event::kCount, Event::kCount},
    // Mode 3: virtual-memory and paging activity.
    {Event::kPageFault, Event::kPageIn, Event::kZeroFill,
     Event::kPageOutDirty, Event::kPageReclaimClean,
     Event::kPageoutWritableModified, Event::kPageoutWritableNotModified,
     Event::kDaemonSweep, Event::kRefClear, Event::kContextSwitch,
     Event::kCount, Event::kCount, Event::kCount, Event::kCount,
     Event::kCount, Event::kCount},
};

}  // namespace

PerfCounters::PerfCounters()
{
    RebuildSlotMap();
}

void
PerfCounters::SetMode(unsigned mode)
{
    if (mode >= kNumCounterModes) {
        Fatal("PerfCounters: mode must be 0..3, got " + std::to_string(mode));
    }
    mode_ = mode;
    regs_.fill(0);
    RebuildSlotMap();
}

void
PerfCounters::Observe(Event event, uint32_t n)
{
    const int8_t slot = slot_of_event_[static_cast<size_t>(event)];
    if (slot >= 0) {
        regs_[static_cast<size_t>(slot)] += n;  // 32-bit wrap is intended.
    }
}

uint32_t
PerfCounters::Read(size_t index) const
{
    if (index >= kNumHwCounters) {
        Fatal("PerfCounters: register index out of range");
    }
    return regs_[index];
}

void
PerfCounters::Clear()
{
    regs_.fill(0);
}

Event
PerfCounters::SlotEvent(unsigned mode, size_t index)
{
    if (mode >= kNumCounterModes || index >= kNumHwCounters) {
        return Event::kCount;
    }
    return kModeTable[mode][index];
}

int
PerfCounters::IndexOf(Event event) const
{
    return slot_of_event_[static_cast<size_t>(event)];
}

void
PerfCounters::RebuildSlotMap()
{
    slot_of_event_.fill(-1);
    for (size_t i = 0; i < kNumHwCounters; ++i) {
        const Event event = kModeTable[mode_][i];
        if (event != Event::kCount) {
            slot_of_event_[static_cast<size_t>(event)] =
                static_cast<int8_t>(i);
        }
    }
}

}  // namespace spur::sim

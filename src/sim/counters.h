/**
 * @file
 * Hardware-faithful model of the SPUR cache controller's performance
 * counters: sixteen 32-bit counters whose meaning is selected by a 2-bit
 * mode register, one of four event sets at a time [Wood87].  The real
 * experiments in the paper were taken through exactly this window, so we
 * model its limitations (32-bit wrap, one mode at a time) and let tests
 * verify that the windowed view agrees with the 64-bit ground truth.
 */
#ifndef SPUR_SIM_COUNTERS_H_
#define SPUR_SIM_COUNTERS_H_

#include <cstddef>
#include <array>
#include <cstdint>

#include "src/sim/events.h"

namespace spur::sim {

/** Number of hardware counters on the cache controller chip. */
inline constexpr size_t kNumHwCounters = 16;

/** Number of selectable event sets. */
inline constexpr size_t kNumCounterModes = 4;

/**
 * The cache controller's on-chip counter block.
 *
 * Attach it to an EventCounts producer by calling Observe() for each event
 * (SpurSystem does this); only events present in the current mode's set are
 * accumulated, into 32-bit registers that wrap like the silicon did.
 */
class PerfCounters : public EventObserver
{
  public:
    PerfCounters();

    PerfCounters(const PerfCounters&) = default;
    PerfCounters& operator=(const PerfCounters&) = default;

    /** Selects the active event set (0..3) and zeroes the registers. */
    void SetMode(unsigned mode);

    /** Currently selected mode. */
    unsigned mode() const { return mode_; }

    /** Records @p n occurrences of @p event if the mode captures it. */
    void Observe(Event event, uint32_t n = 1);

    /** EventObserver: mirror of the ground-truth event stream. */
    void OnEvent(Event event, uint64_t n) override
    {
        Observe(event, static_cast<uint32_t>(n));
    }

    /** Reads hardware counter @p index (0..15) in the current mode. */
    uint32_t Read(size_t index) const;

    /** Zeroes all sixteen registers without changing the mode. */
    void Clear();

    /**
     * Returns the event monitored by counter @p index in @p mode, or
     * Event::kCount when the slot is unused.
     */
    static Event SlotEvent(unsigned mode, size_t index);

    /**
     * Returns the counter index of @p event in the current mode, or -1 if
     * this mode does not capture it.
     */
    int IndexOf(Event event) const;

  private:
    unsigned mode_ = 0;
    std::array<uint32_t, kNumHwCounters> regs_{};
    /// Per-event slot in the current mode, or -1. Rebuilt on SetMode().
    std::array<int8_t, kNumEvents> slot_of_event_{};

    void RebuildSlotMap();
};

}  // namespace spur::sim

#endif  // SPUR_SIM_COUNTERS_H_

#include "src/sim/events.h"

namespace spur::sim {

const char*
ToString(Event event)
{
    switch (event) {
      case Event::kIFetch: return "ifetch";
      case Event::kRead: return "read";
      case Event::kWrite: return "write";
      case Event::kIFetchMiss: return "ifetch_miss";
      case Event::kReadMiss: return "read_miss";
      case Event::kWriteMiss: return "write_miss";
      case Event::kWriteback: return "writeback";
      case Event::kBlockFlush: return "block_flush";
      case Event::kPageFlush: return "page_flush";
      case Event::kXlatePteHit: return "xlate_pte_hit";
      case Event::kXlatePteMiss: return "xlate_pte_miss";
      case Event::kXlateL2Access: return "xlate_l2_access";
      case Event::kDirtyFault: return "dirty_fault";
      case Event::kDirtyFaultZfod: return "dirty_fault_zfod";
      case Event::kDirtyBitMiss: return "dirty_bit_miss";
      case Event::kExcessFault: return "excess_fault";
      case Event::kWriteHitCleanBlock: return "write_hit_clean_block";
      case Event::kWriteMissFill: return "write_miss_fill";
      case Event::kDirtyCheck: return "dirty_check";
      case Event::kRefFault: return "ref_fault";
      case Event::kRefClear: return "ref_clear";
      case Event::kRefClearFlush: return "ref_clear_flush";
      case Event::kPageIn: return "page_in";
      case Event::kZeroFill: return "zero_fill";
      case Event::kPageOutDirty: return "page_out_dirty";
      case Event::kPageReclaimClean: return "page_reclaim_clean";
      case Event::kPageoutWritableModified: return "pageout_w_modified";
      case Event::kPageoutWritableNotModified: return "pageout_w_clean";
      case Event::kDaemonSweep: return "daemon_sweep";
      case Event::kPageFault: return "page_fault";
      case Event::kContextSwitch: return "context_switch";
      case Event::kBusRead: return "bus_read";
      case Event::kBusReadOwned: return "bus_read_owned";
      case Event::kBusUpgrade: return "bus_upgrade";
      case Event::kBusCacheToCache: return "bus_cache_to_cache";
      case Event::kBusInvalidation: return "bus_invalidation";
      case Event::kCount: break;
    }
    return "?";
}

}  // namespace spur::sim

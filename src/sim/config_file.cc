#include "src/sim/config_file.h"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/log.h"

namespace spur::sim {

namespace {

/** Trims ASCII whitespace from both ends. */
std::string
Trim(const std::string& text)
{
    const size_t first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
        return "";
    }
    const size_t last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

/** Applies one key/value pair; fatal on unknown keys or bad numbers. */
void
Apply(MachineConfig& config, const std::string& key,
      const std::string& value, int line_number)
{
    auto fail = [&](const char* what) {
        Fatal("config line " + std::to_string(line_number) + ": " + what +
              " ('" + key + " = " + value + "')");
    };
    char* end = nullptr;
    const double d = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) {
        fail("not a number");
    }
    if (!Trim(std::string(end)).empty()) {
        fail("trailing characters after number");
    }
    const auto u = static_cast<uint64_t>(d);

    if (key == "cache_bytes") config.cache_bytes = u;
    else if (key == "block_bytes") config.block_bytes = u;
    else if (key == "page_bytes") config.page_bytes = u;
    else if (key == "memory_bytes") config.memory_bytes = u;
    else if (key == "memory_mb") config.memory_bytes = u * 1024 * 1024;
    else if (key == "cpu_cycle_ns") config.cpu_cycle_ns = d;
    else if (key == "bus_cycle_ns") config.bus_cycle_ns = d;
    else if (key == "mem_first_word_cycles")
        config.mem_first_word_cycles = static_cast<uint32_t>(u);
    else if (key == "mem_next_word_cycles")
        config.mem_next_word_cycles = static_cast<uint32_t>(u);
    else if (key == "word_bytes") config.word_bytes = static_cast<uint32_t>(u);
    else if (key == "t_fault") config.t_fault = u;
    else if (key == "t_flush_page") config.t_flush_page = u;
    else if (key == "t_dirty_miss") config.t_dirty_miss = u;
    else if (key == "t_dirty_check") config.t_dirty_check = u;
    else if (key == "t_cache_hit") config.t_cache_hit = u;
    else if (key == "t_xlate_hit") config.t_xlate_hit = u;
    else if (key == "page_in_us") config.page_in_us = d;
    else if (key == "t_pagefault_sw") config.t_pagefault_sw = u;
    else if (key == "t_pageout_sw") config.t_pageout_sw = u;
    else if (key == "t_zero_fill") config.t_zero_fill = u;
    else if (key == "t_daemon_page") config.t_daemon_page = u;
    else if (key == "t_ref_clear") config.t_ref_clear = u;
    else if (key == "t_context_switch") config.t_context_switch = u;
    else if (key == "daemon_low_frac") config.daemon_low_frac = d;
    else if (key == "daemon_high_frac") config.daemon_high_frac = d;
    else if (key == "wired_frames")
        config.wired_frames = static_cast<uint32_t>(u);
    else fail("unknown key");
}

}  // namespace

MachineConfig
LoadConfigString(const std::string& text, const MachineConfig& base)
{
    MachineConfig config = base;
    std::istringstream in(text);
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line = line.substr(0, hash);
        }
        line = Trim(line);
        if (line.empty()) {
            continue;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            Fatal("config line " + std::to_string(line_number) +
                  ": expected 'key = value', got '" + line + "'");
        }
        Apply(config, Trim(line.substr(0, eq)), Trim(line.substr(eq + 1)),
              line_number);
    }
    config.Validate();
    return config;
}

MachineConfig
LoadConfigFile(const std::string& path, const MachineConfig& base)
{
    std::ifstream in(path);
    if (!in) {
        Fatal("config: cannot open '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return LoadConfigString(text.str(), base);
}

}  // namespace spur::sim

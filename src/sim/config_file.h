/**
 * @file
 * Loading MachineConfig overrides from a key=value file, so downstream
 * users can explore machine variants (cache geometry, time parameters,
 * paging costs) without recompiling.
 *
 * Format: one `key = value` per line; `#` starts a comment; unknown keys
 * are fatal (catching typos beats silently ignoring them).  Keys mirror
 * the MachineConfig field names:
 *
 * ```
 * # 256 KB cache, 8 MB memory, slow disk
 * cache_bytes   = 262144
 * memory_bytes  = 8388608
 * page_in_us    = 42000
 * t_fault       = 800
 * ```
 */
#ifndef SPUR_SIM_CONFIG_FILE_H_
#define SPUR_SIM_CONFIG_FILE_H_

#include <string>

#include "src/sim/config.h"

namespace spur::sim {

/**
 * Applies `key = value` overrides from @p path on top of @p base and
 * validates the result.  Fatal on missing file, malformed lines or
 * unknown keys.
 */
MachineConfig LoadConfigFile(const std::string& path,
                             const MachineConfig& base = MachineConfig{});

/**
 * Applies overrides from an in-memory string (the file loader's core;
 * exposed for tests and embedded configuration).
 */
MachineConfig LoadConfigString(const std::string& text,
                               const MachineConfig& base = MachineConfig{});

}  // namespace spur::sim

#endif  // SPUR_SIM_CONFIG_FILE_H_

/**
 * @file
 * The full set of architectural events the simulator can observe.
 *
 * `EventCounts` is the simulator's ground truth (64-bit, all events at
 * once).  The hardware-faithful `PerfCounters` facade in counters.h exposes
 * these through 16 32-bit mode-multiplexed registers like the SPUR cache
 * controller chip [Wood87].
 */
#ifndef SPUR_SIM_EVENTS_H_
#define SPUR_SIM_EVENTS_H_

#include <cstddef>
#include <array>
#include <cstdint>

namespace spur::sim {

/** Every countable event in the memory system. */
enum class Event : uint8_t {
    // Processor references.
    kIFetch,
    kRead,
    kWrite,
    // Cache behaviour.
    kIFetchMiss,
    kReadMiss,
    kWriteMiss,
    kWriteback,          ///< Dirty block written back on eviction.
    kBlockFlush,         ///< Individual block flush operations.
    kPageFlush,          ///< Whole-page flush operations.
    // In-cache translation [Wood86].
    kXlatePteHit,        ///< First-level PTE found in cache.
    kXlatePteMiss,       ///< First-level PTE missed; second level used.
    kXlateL2Access,      ///< Wired second-level PTE consulted.
    // Dirty-bit machinery (Section 3).
    kDirtyFault,         ///< Necessary dirty fault (N_ds), incl. zero-fill.
    kDirtyFaultZfod,     ///< The zero-fill subset of the above (N_zfod).
    kDirtyBitMiss,       ///< Cached page-dirty bit stale (N_dm = N_ef).
    kExcessFault,        ///< Excess protection fault (FAULT policy runs).
    kWriteHitCleanBlock, ///< Write hit on an unmodified block (N_w-hit).
    kWriteMissFill,      ///< Block brought in by a write miss (N_w-miss).
    kDirtyCheck,         ///< PTE dirty-bit probe (WRITE policy).
    // Reference-bit machinery (Section 4).
    kRefFault,           ///< Fault taken to set a reference bit.
    kRefClear,           ///< Page daemon cleared a reference bit.
    kRefClearFlush,      ///< ...and flushed the page (REF policy).
    // Virtual memory.
    kPageIn,             ///< Page read from backing store.
    kZeroFill,           ///< Zero-fill-on-demand page materialized.
    kPageOutDirty,       ///< Modified page written to backing store.
    kPageReclaimClean,   ///< Unmodified page dropped without I/O.
    kPageoutWritableModified,    ///< Replaced writable page was dirty.
    kPageoutWritableNotModified, ///< Replaced writable page was clean.
    kDaemonSweep,        ///< Page-daemon activations.
    kPageFault,          ///< Any page fault (resident bit clear).
    // Scheduling.
    kContextSwitch,
    // Multiprocessor bus (Berkeley Ownership, [Katz85]).
    kBusRead,            ///< Read-miss bus transaction.
    kBusReadOwned,       ///< Write-miss (read-with-ownership) transaction.
    kBusUpgrade,         ///< Ownership upgrade of a shared line.
    kBusCacheToCache,    ///< Block supplied by an owning peer cache.
    kBusInvalidation,    ///< A peer's copy invalidated by a transaction.
    kCount,              ///< Number of enumerators; keep last.
};

/** Number of distinct events. */
inline constexpr size_t kNumEvents = static_cast<size_t>(Event::kCount);

/** Returns a short stable name for an event (for tables and traces). */
const char* ToString(Event event);

/**
 * Observer hook for event streams; the hardware PerfCounters model
 * implements this so it sees exactly what the ground truth sees.
 */
class EventObserver
{
  public:
    virtual void OnEvent(Event event, uint64_t n) = 0;

  protected:
    ~EventObserver() = default;
};

/** Ground-truth 64-bit counters for all events. */
class EventCounts
{
  public:
    EventCounts() { Reset(); }

    /** Increments @p event by @p n. */
    void Add(Event event, uint64_t n = 1)
    {
        counts_[static_cast<size_t>(event)] += n;
        if (observer_ != nullptr) {
            observer_->OnEvent(event, n);
        }
    }

    /**
     * Increment with the observer hoisted out: the caller has already
     * established (at dispatch-selection time) that no observer is
     * attached, so this is a single branchless array add.  Only the
     * devirtualized hot path may use it; everything else goes through
     * Add(), which preserves the mirror unconditionally.
     */
    void AddUnobserved(Event event, uint64_t n = 1)
    {
        counts_[static_cast<size_t>(event)] += n;
    }

    /** Attaches (or detaches with nullptr) a mirror observer. */
    void SetObserver(EventObserver* observer) { observer_ = observer; }

    /** True when a mirror observer is attached. */
    bool HasObserver() const { return observer_ != nullptr; }

    /** Returns the current count of @p event. */
    uint64_t Get(Event event) const
    {
        return counts_[static_cast<size_t>(event)];
    }

    /** Zeroes every counter. */
    void Reset() { counts_.fill(0); }

    /** Total processor references (ifetch + read + write). */
    uint64_t TotalRefs() const
    {
        return Get(Event::kIFetch) + Get(Event::kRead) + Get(Event::kWrite);
    }

    /** Total cache misses across reference types. */
    uint64_t TotalMisses() const
    {
        return Get(Event::kIFetchMiss) + Get(Event::kReadMiss) +
               Get(Event::kWriteMiss);
    }

  private:
    std::array<uint64_t, kNumEvents> counts_;
    EventObserver* observer_ = nullptr;
};

/**
 * Compile-time event sink over EventCounts: when @p kObserved is false
 * the observer check disappears from every Add in the instantiation
 * (the hot path's "branchless when no observer attached" contract);
 * when true, events flow through EventCounts::Add so the PerfCounters
 * mirror sees exactly what the ground truth sees.  The devirtualized
 * system re-selects its dispatch when an observer is (de)attached, so
 * the kObserved=false instantiation can never run with one present.
 */
template <bool kObserved>
class EventSink
{
  public:
    explicit EventSink(EventCounts& counts) : counts_(counts) {}

    void Add(Event event, uint64_t n = 1)
    {
        if constexpr (kObserved) {
            counts_.Add(event, n);
        } else {
            counts_.AddUnobserved(event, n);
        }
    }

  private:
    EventCounts& counts_;
};

}  // namespace spur::sim

#endif  // SPUR_SIM_EVENTS_H_

#include "src/sim/config.h"

#include <string>

#include "src/common/log.h"

namespace spur::sim {

void
MachineConfig::Validate() const
{
    auto require = [](bool ok, const char* what) {
        if (!ok) {
            Fatal(std::string("MachineConfig: ") + what);
        }
    };
    require(IsPowerOfTwo(cache_bytes), "cache size must be a power of two");
    require(IsPowerOfTwo(block_bytes), "block size must be a power of two");
    require(IsPowerOfTwo(page_bytes), "page size must be a power of two");
    require(block_bytes >= word_bytes, "block smaller than a word");
    require(page_bytes >= block_bytes, "page smaller than a block");
    require(cache_bytes >= block_bytes, "cache smaller than a block");
    require(memory_bytes >= page_bytes * (wired_frames + 16),
            "memory too small for wired frames plus a working minimum");
    require(cpu_cycle_ns > 0 && bus_cycle_ns > 0, "cycle times must be > 0");
    require(daemon_low_frac > 0 && daemon_high_frac > daemon_low_frac &&
                daemon_high_frac < 0.5,
            "daemon watermarks must satisfy 0 < low < high < 0.5");
}

MachineConfig
MachineConfig::Prototype(uint32_t megabytes)
{
    MachineConfig config;
    config.memory_bytes = uint64_t{megabytes} * 1024 * 1024;
    config.Validate();
    return config;
}

}  // namespace spur::sim

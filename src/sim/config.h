/**
 * @file
 * SPUR machine configuration — the parameters of Table 2.1 and the time
 * parameters of Table 3.2 of the paper, plus the simulation-only knobs
 * (paging I/O latency, page-daemon watermarks) that the prototype realized
 * in hardware or in Sprite.
 */
#ifndef SPUR_SIM_CONFIG_H_
#define SPUR_SIM_CONFIG_H_

#include <cstdint>

#include "src/common/bits.h"
#include "src/common/types.h"

namespace spur::sim {

/**
 * Static description of the simulated SPUR workstation.
 *
 * Defaults reproduce the uniprocessor prototype measured in the paper:
 * 128 KB direct-mapped unified virtual cache, 32-byte blocks, 4 KB pages,
 * 150 ns processor cycle, 125 ns backplane cycle, memory read of
 * 3 cycles to the first word and 1 cycle per subsequent word.
 */
struct MachineConfig {
    // ---- Table 2.1: processor information -------------------------------
    uint64_t cache_bytes = 128 * 1024;   ///< Unified cache capacity.
    uint64_t block_bytes = 32;           ///< Cache block (line) size.
    uint64_t page_bytes = 4 * 1024;      ///< Virtual memory page size.
    double cpu_cycle_ns = 150.0;         ///< Processor cycle time.
    double bus_cycle_ns = 125.0;         ///< Backplane cycle time.

    // ---- Table 2.1: memory information ----------------------------------
    uint32_t mem_first_word_cycles = 3;  ///< Bus cycles to first word.
    uint32_t mem_next_word_cycles = 1;   ///< Bus cycles per later word.
    uint32_t word_bytes = 4;             ///< Memory word size.

    // ---- Main memory size (the experiments sweep this) ------------------
    uint64_t memory_bytes = 8ULL * 1024 * 1024;

    // ---- Table 3.2: time parameters (CPU cycles) -------------------------
    Cycles t_fault = 1000;   ///< t_ds: software fault handler (set a bit).
    Cycles t_flush_page = 500;  ///< t_flush: tag-checked page flush.
    Cycles t_dirty_miss = 25;   ///< t_dm: refresh cached page-dirty bit.
    Cycles t_dirty_check = 5;   ///< t_dc: check PTE dirty bit on write hit.

    // ---- Cache access costs (cycles) -------------------------------------
    Cycles t_cache_hit = 1;     ///< Hit: single processor cycle.
    Cycles t_xlate_hit = 3;     ///< PTE found in cache during translation.

    // ---- Paging / OS model ------------------------------------------------
    /// Process-visible latency of a page-in from disk, in microseconds.
    /// ~1989 SCSI disk: seek + rotation + 4 KB transfer, plus queueing.
    double page_in_us = 42000.0;
    /// CPU cycles of kernel work per page fault (Sprite fault path).
    Cycles t_pagefault_sw = 3000;
    /// CPU cycles of kernel work to initiate a page-out (I/O is async).
    Cycles t_pageout_sw = 1500;
    /// CPU cycles to zero-fill a fresh 4 KB page.
    Cycles t_zero_fill = 1024;
    /// CPU cycles for the page daemon to examine one frame.
    Cycles t_daemon_page = 10;
    /// CPU cycles to clear one reference bit (PTE update in the kernel).
    Cycles t_ref_clear = 20;
    /// CPU cycles for a context switch between processes.
    Cycles t_context_switch = 500;
    /// Frames below which the page daemon starts sweeping, as a fraction
    /// of total frames.
    double daemon_low_frac = 0.04;
    /// Frames at which the page daemon stops, as a fraction of total.
    double daemon_high_frac = 0.08;
    /// Frames reserved for the kernel + wired page tables.
    uint32_t wired_frames = 96;

    // ---- Derived quantities ----------------------------------------------
    uint64_t NumBlocks() const { return cache_bytes / block_bytes; }
    uint64_t NumFrames() const { return memory_bytes / page_bytes; }
    uint64_t BlocksPerPage() const { return page_bytes / block_bytes; }
    unsigned BlockShift() const { return FloorLog2(block_bytes); }
    unsigned PageShift() const { return FloorLog2(page_bytes); }
    unsigned IndexBits() const { return FloorLog2(NumBlocks()); }

    /// Bus cycles to transfer one cache block from memory.
    uint32_t BlockFetchBusCycles() const
    {
        const uint32_t words =
            static_cast<uint32_t>(block_bytes / word_bytes);
        return mem_first_word_cycles + (words - 1) * mem_next_word_cycles;
    }

    /// The same bus transfer expressed in CPU cycles (rounded up).
    Cycles BlockFetchCycles() const
    {
        const double ns = BlockFetchBusCycles() * bus_cycle_ns;
        return static_cast<Cycles>((ns + cpu_cycle_ns - 1) / cpu_cycle_ns);
    }

    /// Page-in latency in CPU cycles.
    Cycles PageInCycles() const
    {
        return static_cast<Cycles>(page_in_us * 1000.0 / cpu_cycle_ns);
    }

    /** Aborts with a message if the configuration is inconsistent. */
    void Validate() const;

    /** Returns the prototype configuration with @p megabytes of memory. */
    static MachineConfig Prototype(uint32_t megabytes);
};

}  // namespace spur::sim

#endif  // SPUR_SIM_CONFIG_H_

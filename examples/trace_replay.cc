/**
 * @file
 * Records a reference trace from a synthetic workload, then replays it
 * against two machines with different dirty-bit policies — the classical
 * trace-driven methodology the paper could not afford at paging scale in
 * 1989, applied to its own experiment.
 *
 * Usage: example_trace_replay [trace_path] [million_refs]
 *                             [--jobs=N] [--json=FILE]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/system.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/workload/process.h"
#include "src/workload/trace.h"
#include "src/workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto& pos = args.positional();
    const std::string path =
        !pos.empty() ? pos[0] : "/tmp/spur_example.trc";
    const uint64_t refs =
        (pos.size() > 1 ? std::atoll(pos[1].c_str()) : 2) * 1'000'000ull;
    runner::BenchSession session("example_trace_replay", args);

    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);

    // 1. Record: run one espresso-like process, teeing its references.
    {
        core::SpurSystem system(config, policy::DirtyPolicyKind::kSpur,
                                policy::RefPolicyKind::kMiss);
        workload::ProcessProfile profile;
        profile.name = "espresso";
        profile.code_pages = 64;
        profile.data_pages = 96;
        profile.heap_pages = 400;
        workload::SyntheticProcess process(system, profile, 5);
        workload::TraceWriter writer(path);
        for (uint64_t i = 0; i < refs; ++i) {
            const MemRef ref = process.Next();
            writer.Append(ref);
            system.Access(ref);
        }
        std::printf("recorded %llu references to %s\n",
                    static_cast<unsigned long long>(writer.count()),
                    path.c_str());
    }

    // 2. Replay under each dirty policy; each replay opens its own read
    // handle on the trace, so the five runs go through the pool together.
    struct Replay {
        uint64_t misses = 0;
        uint64_t dirty_faults = 0;
        uint64_t excess = 0;
        uint64_t dirty_bit_misses = 0;
        double elapsed_seconds = 0;
    };
    const policy::DirtyPolicyKind kinds[] = {
        policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
        policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
        policy::DirtyPolicyKind::kWrite};
    Replay replays[5];
    runner::ParallelFor(5, session.jobs(), [&](size_t i) {
        core::SpurSystem system(config, kinds[i],
                                policy::RefPolicyKind::kMiss);
        workload::ReplayTrace(path, system);
        const auto& ev = system.events();
        replays[i] = Replay{ev.TotalMisses(),
                            ev.Get(sim::Event::kDirtyFault),
                            ev.Get(sim::Event::kExcessFault),
                            ev.Get(sim::Event::kDirtyBitMiss),
                            system.timing().ElapsedSeconds()};
    });

    Table t("Same trace, every dirty-bit policy (8 MB machine)");
    t.SetHeader({"policy", "misses", "dirty faults", "excess", "dirty-bit "
                 "misses", "elapsed (s)"});
    for (size_t i = 0; i < 5; ++i) {
        const Replay& r = replays[i];
        t.AddRow({ToString(kinds[i]), Table::Num(r.misses),
                  Table::Num(r.dirty_faults), Table::Num(r.excess),
                  Table::Num(r.dirty_bit_misses),
                  Table::Num(r.elapsed_seconds, 3)});
        stats::RunRecord record;
        record.workload = "espresso_trace";
        record.dirty_policy = ToString(kinds[i]);
        record.ref_policy = "MISS";
        record.memory_mb = 8;
        record.seed = 5;
        record.refs_issued = refs;
        record.elapsed_seconds = r.elapsed_seconds;
        record.AddMetric("misses", static_cast<double>(r.misses));
        record.AddMetric("n_ds", static_cast<double>(r.dirty_faults));
        record.AddMetric("n_ef", static_cast<double>(r.excess));
        record.AddMetric("n_dm",
                         static_cast<double>(r.dirty_bit_misses));
        session.Record(std::move(record));
    }
    t.Print(stdout);
    std::remove(path.c_str());
    return session.Finish();
}

/**
 * @file
 * Records one scenario's op stream into a SPUR-TRACE/1 library, then
 * replays it through every dirty-bit policy — the classical
 * trace-driven methodology the paper could not afford at paging scale
 * in 1989 (Section 2), applied to its own experiment.  The generators
 * being pure reverses that verdict: one generation pass is recorded
 * once and feeds five policy cells byte-identically.
 *
 * Usage: example_trace_replay [trace_path] [million_refs]
 *                             [--jobs=N] [--json=FILE]
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/common/args.h"
#include "src/common/log.h"
#include "src/common/table.h"
#include "src/core/system.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/workload/trace.h"
#include "src/workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto& pos = args.positional();
    const std::string path =
        !pos.empty() ? pos[0] : "/tmp/spur_example.trc";
    const uint64_t refs =
        (pos.size() > 1 ? std::atoll(pos[1].c_str()) : 2) * 1'000'000ull;
    const uint64_t seed = 5;
    runner::BenchSession session("example_trace_replay", args);

    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);

    // 1. Record: run the flush-storm scenario once on a live machine,
    // teeing every WorkloadHost call into a trace stream.
    {
        core::SpurSystem system(config, policy::DirtyPolicyKind::kSpur,
                                policy::RefPolicyKind::kMiss);
        workload::WorkloadSpec spec = workload::MakeFlushStorm();
        const uint32_t slice_refs = spec.slice_refs;
        workload::TraceStreamMeta meta;
        meta.workload = "flush-storm";
        meta.seed = seed;
        meta.refs = refs;
        meta.page_bytes = config.page_bytes;
        meta.block_bytes = config.block_bytes;
        workload::TraceEncoder encoder(meta);
        workload::RecordingHost recorder(system, encoder);
        workload::Driver driver(recorder, std::move(spec), refs, seed,
                                slice_refs);
        driver.Run();
        recorder.StopRecording();
        const uint64_t ops = encoder.ops();
        const uint64_t accesses = encoder.accesses();
        workload::TraceFileWriter writer;
        std::string error;
        if (!writer.Open(path, &error) ||
            !writer.AppendStream(encoder.Finish(driver.refs_issued()),
                                 &error) ||
            !writer.Finish(&error)) {
            Fatal("example_trace_replay: " + error);
        }
        std::printf("recorded %llu ops (%llu accesses) to %s\n",
                    static_cast<unsigned long long>(ops),
                    static_cast<unsigned long long>(accesses),
                    path.c_str());
    }

    // 2. Replay under each dirty policy; each replay loads its own copy
    // of the library, so the five runs are fully independent.
    struct Replay {
        uint64_t refs_issued = 0;
        uint64_t misses = 0;
        uint64_t dirty_faults = 0;
        uint64_t excess = 0;
        uint64_t dirty_bit_misses = 0;
        double elapsed_seconds = 0;
    };
    const policy::DirtyPolicyKind kinds[] = {
        policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
        policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
        policy::DirtyPolicyKind::kWrite};
    Replay replays[5];
    runner::ParallelFor(5, session.jobs(), [&](size_t i) {
        core::SpurSystem system(config, kinds[i],
                                policy::RefPolicyKind::kMiss);
        const workload::ReplayStats stats =
            workload::ReplayTrace(path, system);
        const auto& ev = system.events();
        replays[i] = Replay{stats.refs_issued,
                            ev.TotalMisses(),
                            ev.Get(sim::Event::kDirtyFault),
                            ev.Get(sim::Event::kExcessFault),
                            ev.Get(sim::Event::kDirtyBitMiss),
                            system.timing().ElapsedSeconds()};
    });

    Table t("Same trace, every dirty-bit policy (8 MB machine)");
    t.SetHeader({"policy", "misses", "dirty faults", "excess", "dirty-bit "
                 "misses", "elapsed (s)"});
    for (size_t i = 0; i < 5; ++i) {
        const Replay& r = replays[i];
        t.AddRow({ToString(kinds[i]), Table::Num(r.misses),
                  Table::Num(r.dirty_faults), Table::Num(r.excess),
                  Table::Num(r.dirty_bit_misses),
                  Table::Num(r.elapsed_seconds, 3)});
        stats::RunRecord record;
        record.workload = "flush-storm-trace";
        record.dirty_policy = ToString(kinds[i]);
        record.ref_policy = "MISS";
        record.memory_mb = 8;
        record.seed = seed;
        record.refs_issued = r.refs_issued;
        record.elapsed_seconds = r.elapsed_seconds;
        record.AddMetric("misses", static_cast<double>(r.misses));
        record.AddMetric("n_ds", static_cast<double>(r.dirty_faults));
        record.AddMetric("n_ef", static_cast<double>(r.excess));
        record.AddMetric("n_dm",
                         static_cast<double>(r.dirty_bit_misses));
        session.Record(std::move(record));
    }
    t.Print(stdout);
    std::remove(path.c_str());
    return session.Finish();
}

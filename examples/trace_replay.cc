/**
 * @file
 * Records a reference trace from a synthetic workload, then replays it
 * against two machines with different dirty-bit policies — the classical
 * trace-driven methodology the paper could not afford at paging scale in
 * 1989, applied to its own experiment.
 *
 * Usage: example_trace_replay [trace_path] [million_refs]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/table.h"
#include "src/core/system.h"
#include "src/workload/process.h"
#include "src/workload/trace.h"
#include "src/workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const std::string path =
        (argc > 1) ? argv[1] : "/tmp/spur_example.trc";
    const uint64_t refs =
        ((argc > 2) ? std::atoll(argv[2]) : 2) * 1'000'000ull;

    const sim::MachineConfig config = sim::MachineConfig::Prototype(8);

    // 1. Record: run one espresso-like process, teeing its references.
    {
        core::SpurSystem system(config, policy::DirtyPolicyKind::kSpur,
                                policy::RefPolicyKind::kMiss);
        workload::ProcessProfile profile;
        profile.name = "espresso";
        profile.code_pages = 64;
        profile.data_pages = 96;
        profile.heap_pages = 400;
        workload::SyntheticProcess process(system, profile, 5);
        workload::TraceWriter writer(path);
        for (uint64_t i = 0; i < refs; ++i) {
            const MemRef ref = process.Next();
            writer.Append(ref);
            system.Access(ref);
        }
        std::printf("recorded %llu references to %s\n",
                    static_cast<unsigned long long>(writer.count()),
                    path.c_str());
    }

    // 2. Replay under each dirty policy.
    Table t("Same trace, every dirty-bit policy (8 MB machine)");
    t.SetHeader({"policy", "misses", "dirty faults", "excess", "dirty-bit "
                 "misses", "elapsed (s)"});
    for (const policy::DirtyPolicyKind kind :
         {policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
          policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
          policy::DirtyPolicyKind::kWrite}) {
        core::SpurSystem system(config, kind, policy::RefPolicyKind::kMiss);
        workload::ReplayTrace(path, system);
        const auto& ev = system.events();
        t.AddRow({ToString(kind), Table::Num(ev.TotalMisses()),
                  Table::Num(ev.Get(sim::Event::kDirtyFault)),
                  Table::Num(ev.Get(sim::Event::kExcessFault)),
                  Table::Num(ev.Get(sim::Event::kDirtyBitMiss)),
                  Table::Num(system.timing().ElapsedSeconds(), 3)});
    }
    t.Print(stdout);
    std::remove(path.c_str());
    return 0;
}

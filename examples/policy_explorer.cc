/**
 * @file
 * Sweeps the full policy cross-product (5 dirty x 3 reference) over a
 * memory-size range on one workload and prints a compact grid — the
 * "what if" explorer for the paper's entire design space.
 *
 * Usage: example_policy_explorer [w1|slc] [million_refs] [mem_mb ...]
 *                                [--jobs=N] [--json=FILE]
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/runner/session.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto& pos = args.positional();
    core::WorkloadId workload = core::WorkloadId::kWorkload1;
    if (!pos.empty() && pos[0] == "slc") {
        workload = core::WorkloadId::kSlc;
    }
    const uint64_t refs =
        (pos.size() > 1 ? std::atoll(pos[1].c_str()) : 6) * 1'000'000ull;
    std::vector<uint32_t> memories;
    for (size_t i = 2; i < pos.size(); ++i) {
        memories.push_back(
            static_cast<uint32_t>(std::atoi(pos[i].c_str())));
    }
    if (memories.empty()) {
        memories = {5, 8};
    }
    runner::BenchSession session("example_policy_explorer", args);

    const policy::DirtyPolicyKind dirty_kinds[] = {
        policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
        policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
        policy::DirtyPolicyKind::kWrite};
    const policy::RefPolicyKind ref_kinds[] = {
        policy::RefPolicyKind::kMiss, policy::RefPolicyKind::kRef,
        policy::RefPolicyKind::kNoRef};

    // The whole cross-product runs through the pool at once; the grids
    // below index into the flat result list in construction order.
    std::vector<core::RunConfig> configs;
    for (const uint32_t mb : memories) {
        for (const auto dirty : dirty_kinds) {
            for (const auto ref : ref_kinds) {
                core::RunConfig config;
                config.workload = workload;
                config.memory_mb = mb;
                config.dirty = dirty;
                config.ref = ref;
                config.refs = refs;
                configs.push_back(config);
            }
        }
    }
    const auto results = session.RunAll(configs);

    size_t i = 0;
    for (const uint32_t mb : memories) {
        Table t(std::string(ToString(workload)) + " @ " +
                std::to_string(mb) +
                " MB: elapsed seconds (page-ins) per policy pair");
        t.SetHeader({"dirty \\ ref", "MISS", "REF", "NOREF"});
        for (const auto dirty : dirty_kinds) {
            std::vector<std::string> row = {ToString(dirty)};
            for (size_t rf = 0; rf < 3; ++rf, ++i) {
                const core::RunResult& r = results[i];
                row.push_back(Table::Num(r.elapsed_seconds, 1) + " (" +
                              Table::Num(r.page_ins) + ")");
            }
            t.AddRow(row);
        }
        t.Print(stdout);
        std::printf("\n");
    }
    std::printf("The dirty-bit choice barely moves the totals (its\n"
                "overhead is sub-1%% of elapsed time); the reference-bit\n"
                "choice dominates through its effect on page-ins.\n");
    return session.Finish();
}

/**
 * @file
 * Sweeps the full policy cross-product (5 dirty x 3 reference) over a
 * memory-size range on one workload and prints a compact grid — the
 * "what if" explorer for the paper's entire design space.
 *
 * Usage: example_policy_explorer [w1|slc] [million_refs] [mem_mb ...]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/common/table.h"
#include "src/core/experiment.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    core::WorkloadId workload = core::WorkloadId::kWorkload1;
    if (argc > 1 && std::strcmp(argv[1], "slc") == 0) {
        workload = core::WorkloadId::kSlc;
    }
    const uint64_t refs =
        ((argc > 2) ? std::atoll(argv[2]) : 6) * 1'000'000ull;
    std::vector<uint32_t> memories;
    for (int i = 3; i < argc; ++i) {
        memories.push_back(static_cast<uint32_t>(std::atoi(argv[i])));
    }
    if (memories.empty()) {
        memories = {5, 8};
    }

    const policy::DirtyPolicyKind dirty_kinds[] = {
        policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
        policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
        policy::DirtyPolicyKind::kWrite};
    const policy::RefPolicyKind ref_kinds[] = {
        policy::RefPolicyKind::kMiss, policy::RefPolicyKind::kRef,
        policy::RefPolicyKind::kNoRef};

    for (const uint32_t mb : memories) {
        Table t(std::string(ToString(workload)) + " @ " +
                std::to_string(mb) +
                " MB: elapsed seconds (page-ins) per policy pair");
        t.SetHeader({"dirty \\ ref", "MISS", "REF", "NOREF"});
        for (const auto dirty : dirty_kinds) {
            std::vector<std::string> row = {ToString(dirty)};
            for (const auto ref : ref_kinds) {
                core::RunConfig config;
                config.workload = workload;
                config.memory_mb = mb;
                config.dirty = dirty;
                config.ref = ref;
                config.refs = refs;
                const core::RunResult r = core::RunOnce(config);
                row.push_back(Table::Num(r.elapsed_seconds, 1) + " (" +
                              Table::Num(r.page_ins) + ")");
            }
            t.AddRow(row);
        }
        t.Print(stdout);
        std::printf("\n");
    }
    std::printf("The dirty-bit choice barely moves the totals (its\n"
                "overhead is sub-1%% of elapsed time); the reference-bit\n"
                "choice dominates through its effect on page-ins.\n");
    return 0;
}

/**
 * @file
 * Calibration report: runs a workload at one memory size and prints every
 * ratio the paper's tables constrain, next to the target band.  Used
 * while tuning the synthetic workload profiles; kept as an example of the
 * low-level inspection API.
 *
 * Usage: example_calibrate [w1|slc|dev] [memory_mb] [million_refs] [seed]
 *                          [--jobs=N] [--json=FILE]
 */
#include <cstdio>
#include <cstdlib>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/core/overhead_model.h"
#include "src/runner/session.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto& pos = args.positional();

    core::RunConfig run;
    if (!pos.empty()) {
        if (pos[0] == "slc") {
            run.workload = core::WorkloadId::kSlc;
        } else if (pos[0] == "dev") {
            run.workload = core::WorkloadId::kDevMachine;
        }
    }
    run.memory_mb =
        pos.size() > 1 ? static_cast<uint32_t>(std::atoi(pos[1].c_str()))
                       : 8;
    if (pos.size() > 2) {
        run.refs = std::atoll(pos[2].c_str()) * 1'000'000ull;
    }
    run.seed = pos.size() > 3 ? std::atoll(pos[3].c_str()) : 1;
    runner::BenchSession session("example_calibrate", args);

    const core::RunResult r = core::RunOnce(run);
    const core::EventFrequencies& f = r.frequencies;
    const sim::EventCounts& ev = r.events;

    const double miss_rate = static_cast<double>(ev.TotalMisses()) /
                             static_cast<double>(ev.TotalRefs());
    const double whit_wmiss =
        static_cast<double>(f.n_w_hit) /
        static_cast<double>(f.n_w_miss ? f.n_w_miss : 1);
    const double zfod_frac =
        static_cast<double>(f.n_zfod) /
        static_cast<double>(f.n_ds ? f.n_ds : 1);
    const double excess_incl =
        static_cast<double>(f.n_ef) /
        static_cast<double>(f.n_ds ? f.n_ds : 1);
    const double excess_excl = core::OverheadModel::MeasuredExcessRatio(f);

    Table t(std::string("Calibration: ") + ToString(run.workload) + " @ " +
            std::to_string(run.memory_mb) + " MB, " +
            std::to_string(r.refs_issued) + " refs");
    t.SetHeader({"quantity", "value", "paper target"});
    t.AddRow({"miss rate", Table::Pct(miss_rate, 1), "~3-8%"});
    t.AddRow({"N_ds", Table::Num(f.n_ds), "SLC 1.7-2.4k, W1 7.5-10k"});
    t.AddRow({"N_zfod", Table::Num(f.n_zfod),
              "SLC ~905, W1 ~5.2k (constant-ish)"});
    t.AddRow({"N_ef = N_dm", Table::Num(f.n_ef), "see ratios"});
    t.AddRow({"N_w-hit (k)", Table::Num(f.n_w_hit / 1000.0, 1),
              "SLC 0.6-1.3M, W1 4-6M"});
    t.AddRow({"N_w-miss (k)", Table::Num(f.n_w_miss / 1000.0, 1),
              "SLC 3.7-7.4M, W1 17-34M"});
    t.AddRow({"N_w-hit / N_w-miss", Table::Num(whit_wmiss, 3),
              "0.16 - 0.24"});
    t.AddRow({"N_zfod / N_ds", Table::Num(zfod_frac, 2),
              "SLC ~0.39-0.55, W1 ~0.54-0.69"});
    t.AddRow({"excess ratio (incl zfod)", Table::Pct(excess_incl, 1),
              "<= 16%"});
    t.AddRow({"excess ratio (excl zfod)", Table::Pct(excess_excl, 1),
              "15% - 34%"});
    t.AddRow({"geometric model prediction",
              Table::Pct(core::OverheadModel::PredictedExcessRatio(f), 1),
              "< 20%-ish"});
    t.AddRow({"page-ins", Table::Num(r.page_ins),
              "SLC 1-4.6k, W1 1.8-12k (by mem)"});
    t.AddRow({"page-outs", Table::Num(r.page_outs), "order of page-ins"});
    t.AddRow({"ref faults", Table::Num(ev.Get(sim::Event::kRefFault)), "-"});
    t.AddRow({"elapsed (s)", Table::Num(r.elapsed_seconds, 1),
              "SLC 341-948, W1 2535-3016 (scaled)"});
    t.Print(stdout);

    session.Record(run, /*rep=*/0, r);
    return session.Finish();
}

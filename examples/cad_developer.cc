/**
 * @file
 * The paper's motivating scenario: a CAD tool developer's session
 * (WORKLOAD1) with espresso optimizing a PLA in the background, compared
 * across all five dirty-bit alternatives at one memory size.
 *
 * Demonstrates the mechanistic mode: each policy is actually executed,
 * not modelled, and the per-bucket elapsed-time breakdown shows where
 * the cycles go.
 *
 * Usage: example_cad_developer [memory_mb] [million_refs]
 */
#include <cstdio>
#include <cstdlib>

#include "src/common/table.h"
#include "src/core/system.h"
#include "src/workload/driver.h"
#include "src/workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const uint32_t memory_mb = (argc > 1) ? std::atoi(argv[1]) : 6;
    const uint64_t refs =
        ((argc > 2) ? std::atoll(argv[2]) : 8) * 1'000'000ull;

    Table t("CAD developer session (WORKLOAD1) at " +
            std::to_string(memory_mb) + " MB, " +
            std::to_string(refs / 1'000'000) + "M refs, per dirty policy");
    t.SetHeader({"policy", "dirty faults", "excess faults",
                 "dirty-bit misses", "PTE checks", "fault time (s)",
                 "flush time (s)", "elapsed (s)"});

    for (const policy::DirtyPolicyKind kind :
         {policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
          policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
          policy::DirtyPolicyKind::kWrite}) {
        sim::MachineConfig config = sim::MachineConfig::Prototype(memory_mb);
        config.page_in_us = 800.0;  // Scaled paging (see DESIGN.md).
        core::SpurSystem system(config, kind,
                                policy::RefPolicyKind::kMiss);
        workload::Driver driver(system, workload::MakeWorkload1(), refs,
                                /*seed=*/11);
        driver.Run();
        const auto& ev = system.events();
        t.AddRow({ToString(kind),
                  Table::Num(ev.Get(sim::Event::kDirtyFault)),
                  Table::Num(ev.Get(sim::Event::kExcessFault)),
                  Table::Num(ev.Get(sim::Event::kDirtyBitMiss)),
                  Table::Num(ev.Get(sim::Event::kDirtyCheck)),
                  Table::Num(system.timing().Seconds(sim::TimeBucket::kFault),
                             2),
                  Table::Num(system.timing().Seconds(sim::TimeBucket::kFlush),
                             2),
                  Table::Num(system.timing().ElapsedSeconds(), 2)});
    }
    t.Print(stdout);
    std::printf(
        "\nThe FAULT policy's excess faults equal the SPUR policy's\n"
        "dirty-bit misses: the same stale-cached-state events, paid for\n"
        "at t_ds=1000 vs t_dm=25 cycles.  FLUSH shows zero excess faults\n"
        "but pays a page flush per necessary fault.\n");
    return 0;
}

/**
 * @file
 * The paper's motivating scenario: a CAD tool developer's session
 * (WORKLOAD1) with espresso optimizing a PLA in the background, compared
 * across all five dirty-bit alternatives at one memory size.
 *
 * Demonstrates the mechanistic mode: each policy is actually executed,
 * not modelled, and the per-bucket elapsed-time breakdown shows where
 * the cycles go.
 *
 * Usage: example_cad_developer [memory_mb] [million_refs]
 *                              [--jobs=N] [--json=FILE]
 */
#include <cstdio>
#include <cstdlib>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/system.h"
#include "src/runner/runner.h"
#include "src/runner/session.h"
#include "src/workload/driver.h"
#include "src/workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto& pos = args.positional();
    const uint32_t memory_mb =
        !pos.empty() ? static_cast<uint32_t>(std::atoi(pos[0].c_str())) : 6;
    const uint64_t refs =
        (pos.size() > 1 ? std::atoll(pos[1].c_str()) : 8) * 1'000'000ull;
    runner::BenchSession session("example_cad_developer", args);

    Table t("CAD developer session (WORKLOAD1) at " +
            std::to_string(memory_mb) + " MB, " +
            std::to_string(refs / 1'000'000) + "M refs, per dirty policy");
    t.SetHeader({"policy", "dirty faults", "excess faults",
                 "dirty-bit misses", "PTE checks", "fault time (s)",
                 "flush time (s)", "elapsed (s)"});

    // Each policy drives a private system, so the five mechanistic runs
    // go through the pool together; rows are added in policy order.
    struct PolicyRun {
        uint64_t dirty_faults = 0;
        uint64_t excess_faults = 0;
        uint64_t dirty_bit_misses = 0;
        uint64_t pte_checks = 0;
        double fault_seconds = 0;
        double flush_seconds = 0;
        double elapsed_seconds = 0;
    };
    const policy::DirtyPolicyKind kinds[] = {
        policy::DirtyPolicyKind::kMin, policy::DirtyPolicyKind::kFault,
        policy::DirtyPolicyKind::kFlush, policy::DirtyPolicyKind::kSpur,
        policy::DirtyPolicyKind::kWrite};
    PolicyRun runs[5];
    runner::ParallelFor(5, session.jobs(), [&](size_t i) {
        sim::MachineConfig config = sim::MachineConfig::Prototype(memory_mb);
        config.page_in_us = 800.0;  // Scaled paging (see DESIGN.md).
        core::SpurSystem system(config, kinds[i],
                                policy::RefPolicyKind::kMiss);
        workload::Driver driver(system, workload::MakeWorkload1(), refs,
                                /*seed=*/11);
        driver.Run();
        const auto& ev = system.events();
        runs[i] = PolicyRun{
            ev.Get(sim::Event::kDirtyFault),
            ev.Get(sim::Event::kExcessFault),
            ev.Get(sim::Event::kDirtyBitMiss),
            ev.Get(sim::Event::kDirtyCheck),
            system.timing().Seconds(sim::TimeBucket::kFault),
            system.timing().Seconds(sim::TimeBucket::kFlush),
            system.timing().ElapsedSeconds()};
    });

    for (size_t i = 0; i < 5; ++i) {
        const PolicyRun& r = runs[i];
        t.AddRow({ToString(kinds[i]), Table::Num(r.dirty_faults),
                  Table::Num(r.excess_faults),
                  Table::Num(r.dirty_bit_misses), Table::Num(r.pte_checks),
                  Table::Num(r.fault_seconds, 2),
                  Table::Num(r.flush_seconds, 2),
                  Table::Num(r.elapsed_seconds, 2)});
        stats::RunRecord record;
        record.workload = "WORKLOAD1";
        record.dirty_policy = ToString(kinds[i]);
        record.ref_policy = "MISS";
        record.memory_mb = memory_mb;
        record.seed = 11;
        record.refs_issued = refs;
        record.elapsed_seconds = r.elapsed_seconds;
        record.AddMetric("n_ds", static_cast<double>(r.dirty_faults));
        record.AddMetric("n_ef", static_cast<double>(r.excess_faults));
        record.AddMetric("n_dm", static_cast<double>(r.dirty_bit_misses));
        record.AddMetric("pte_checks", static_cast<double>(r.pte_checks));
        record.AddMetric("fault_seconds", r.fault_seconds);
        record.AddMetric("flush_seconds", r.flush_seconds);
        session.Record(std::move(record));
    }
    t.Print(stdout);
    std::printf(
        "\nThe FAULT policy's excess faults equal the SPUR policy's\n"
        "dirty-bit misses: the same stale-cached-state events, paid for\n"
        "at t_ds=1000 vs t_dm=25 cycles.  FLUSH shows zero excess faults\n"
        "but pays a page flush per necessary fault.\n");
    return session.Finish();
}

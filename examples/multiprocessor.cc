/**
 * @file
 * Drives the 4-CPU SPUR multiprocessor: four workers sharing a result
 * segment under the Berkeley Ownership protocol, showing the coherency
 * traffic and the shared dirty-fault machinery (one fault per page for
 * the whole machine, because the PTE is shared).
 *
 * Usage: example_multiprocessor [cpus] [million_refs]
 *                               [--jobs=N] [--json=FILE]
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/args.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/core/mp_system.h"
#include "src/runner/session.h"
#include "src/workload/process.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto& pos = args.positional();
    const unsigned cpus =
        !pos.empty() ? static_cast<unsigned>(std::atoi(pos[0].c_str())) : 4;
    const uint64_t refs =
        (pos.size() > 1 ? std::atoll(pos[1].c_str()) : 2) * 1'000'000ull;
    runner::BenchSession session("example_multiprocessor", args);

    sim::MachineConfig config = sim::MachineConfig::Prototype(8);
    core::MpSpurSystem machine(config, cpus,
                               policy::DirtyPolicyKind::kSpur,
                               policy::RefPolicyKind::kMiss);
    const uint64_t page = config.page_bytes;

    // Workers: private heaps, plus one segment shared with worker 0.
    std::vector<Pid> pids(cpus);
    for (unsigned cpu = 0; cpu < cpus; ++cpu) {
        pids[cpu] = machine.CreateProcess();
        machine.MapRegion(pids[cpu], workload::kHeapBase, 256 * page,
                          vm::PageKind::kHeap);
        if (cpu == 0) {
            machine.MapRegion(pids[0], workload::kStackBase, 64 * page,
                              vm::PageKind::kHeap);
        } else {
            machine.ShareSegment(pids[cpu], 3, pids[0], 3);
        }
    }

    Rng rng(17);
    for (uint64_t i = 0; i < refs / cpus; ++i) {
        for (unsigned cpu = 0; cpu < cpus; ++cpu) {
            const bool shared = rng.Chance(0.3);
            const ProcessAddr base =
                shared ? workload::kStackBase : workload::kHeapBase;
            const uint32_t span = shared ? 64 : 256;
            const ProcessAddr addr =
                base +
                static_cast<ProcessAddr>(rng.NextZipf(span, 0.8) * page +
                                         rng.NextBelow(128) * 32);
            machine.Access(cpu, MemRef{pids[cpu], addr,
                                       rng.Chance(0.15)
                                           ? AccessType::kWrite
                                           : AccessType::kRead});
        }
    }

    const auto& ev = machine.events();
    Table t(std::to_string(cpus) +
            "-CPU SPUR multiprocessor, 30% shared references");
    t.SetHeader({"quantity", "count"});
    t.AddRow({"total refs", Table::Num(ev.TotalRefs())});
    t.AddRow({"misses", Table::Num(ev.TotalMisses())});
    t.AddRow({"bus reads", Table::Num(ev.Get(sim::Event::kBusRead))});
    t.AddRow({"bus read-owned",
              Table::Num(ev.Get(sim::Event::kBusReadOwned))});
    t.AddRow({"ownership upgrades",
              Table::Num(ev.Get(sim::Event::kBusUpgrade))});
    t.AddRow({"cache-to-cache supplies",
              Table::Num(ev.Get(sim::Event::kBusCacheToCache))});
    t.AddRow({"peer invalidations",
              Table::Num(ev.Get(sim::Event::kBusInvalidation))});
    t.AddRow({"dirty faults (shared PTEs: once per page)",
              Table::Num(ev.Get(sim::Event::kDirtyFault))});
    t.AddRow({"dirty-bit misses (stale peer copies)",
              Table::Num(ev.Get(sim::Event::kDirtyBitMiss))});
    t.Print(stdout);
    std::printf(
        "\nNote the dirty-bit misses: a peer CPU caching a block while\n"
        "the page was clean later writes it after another CPU took the\n"
        "fault — exactly the cross-processor staleness the SPUR scheme's\n"
        "check-the-PTE-before-faulting rule was designed for.\n");

    stats::RunRecord record;
    record.workload = "mp_shared_workers";
    record.dirty_policy = "SPUR";
    record.ref_policy = "MISS";
    record.memory_mb = 8;
    record.seed = 17;
    record.refs_issued = ev.TotalRefs();
    record.AddMetric("cpus", static_cast<double>(cpus));
    record.AddMetric("misses", static_cast<double>(ev.TotalMisses()));
    record.AddMetric("bus_reads",
                     static_cast<double>(ev.Get(sim::Event::kBusRead)));
    record.AddMetric(
        "cache_to_cache",
        static_cast<double>(ev.Get(sim::Event::kBusCacheToCache)));
    record.AddMetric("dirty_faults",
                     static_cast<double>(ev.Get(sim::Event::kDirtyFault)));
    record.AddMetric(
        "dirty_bit_misses",
        static_cast<double>(ev.Get(sim::Event::kDirtyBitMiss)));
    session.Record(std::move(record));
    return session.Finish();
}

/**
 * @file
 * The paper's second workload: the SPUR Common Lisp compiler (SLC),
 * compared across the three reference-bit policies over a sweep of
 * memory sizes — a miniature of Table 4.1 with a configurable sweep.
 *
 * Usage: example_lisp_compiler [million_refs] [mem_mb ...]
 *                              [--jobs=N] [--json=FILE]
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/runner/session.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto& pos = args.positional();
    const uint64_t refs =
        (!pos.empty() ? std::atoll(pos[0].c_str()) : 8) * 1'000'000ull;
    std::vector<uint32_t> memories;
    for (size_t i = 1; i < pos.size(); ++i) {
        memories.push_back(
            static_cast<uint32_t>(std::atoi(pos[i].c_str())));
    }
    if (memories.empty()) {
        memories = {5, 6, 8};
    }
    runner::BenchSession session("example_lisp_compiler", args);

    std::vector<core::RunConfig> configs;
    for (const uint32_t mb : memories) {
        for (const policy::RefPolicyKind ref :
             {policy::RefPolicyKind::kMiss, policy::RefPolicyKind::kRef,
              policy::RefPolicyKind::kNoRef}) {
            core::RunConfig config;
            config.workload = core::WorkloadId::kSlc;
            config.memory_mb = mb;
            config.ref = ref;
            config.refs = refs;
            configs.push_back(config);
        }
    }
    const auto results = session.RunAll(configs);

    Table t("SPUR Lisp compiler (SLC): reference-bit policies");
    t.SetHeader({"memory (MB)", "policy", "page-ins", "ref faults",
                 "ref clears", "daemon sweeps", "elapsed (s)"});
    for (size_t i = 0; i < configs.size(); ++i) {
        const core::RunResult& r = results[i];
        t.AddRow({std::to_string(configs[i].memory_mb),
                  ToString(configs[i].ref), Table::Num(r.page_ins),
                  Table::Num(r.events.Get(sim::Event::kRefFault)),
                  Table::Num(r.events.Get(sim::Event::kRefClear)),
                  Table::Num(r.events.Get(sim::Event::kDaemonSweep)),
                  Table::Num(r.elapsed_seconds, 2)});
        if (i % 3 == 2) {
            t.AddSeparator();
        }
    }
    t.Print(stdout);
    std::printf(
        "\nNOREF never takes reference faults or clears, but its page\n"
        "daemon reclaims pages in sweep order, inflating page-ins when\n"
        "memory is tight.  REF pays a page flush per clear.\n");
    return session.Finish();
}

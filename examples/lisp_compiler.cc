/**
 * @file
 * The paper's second workload: the SPUR Common Lisp compiler (SLC),
 * compared across the three reference-bit policies over a sweep of
 * memory sizes — a miniature of Table 4.1 with a configurable sweep.
 *
 * Usage: example_lisp_compiler [million_refs] [mem_mb ...]
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/table.h"
#include "src/core/experiment.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const uint64_t refs =
        ((argc > 1) ? std::atoll(argv[1]) : 8) * 1'000'000ull;
    std::vector<uint32_t> memories;
    for (int i = 2; i < argc; ++i) {
        memories.push_back(static_cast<uint32_t>(std::atoi(argv[i])));
    }
    if (memories.empty()) {
        memories = {5, 6, 8};
    }

    Table t("SPUR Lisp compiler (SLC): reference-bit policies");
    t.SetHeader({"memory (MB)", "policy", "page-ins", "ref faults",
                 "ref clears", "daemon sweeps", "elapsed (s)"});
    for (const uint32_t mb : memories) {
        for (const policy::RefPolicyKind ref :
             {policy::RefPolicyKind::kMiss, policy::RefPolicyKind::kRef,
              policy::RefPolicyKind::kNoRef}) {
            core::RunConfig config;
            config.workload = core::WorkloadId::kSlc;
            config.memory_mb = mb;
            config.ref = ref;
            config.refs = refs;
            const core::RunResult r = core::RunOnce(config);
            t.AddRow({std::to_string(mb), ToString(ref),
                      Table::Num(r.page_ins),
                      Table::Num(r.events.Get(sim::Event::kRefFault)),
                      Table::Num(r.events.Get(sim::Event::kRefClear)),
                      Table::Num(r.events.Get(sim::Event::kDaemonSweep)),
                      Table::Num(r.elapsed_seconds, 2)});
        }
        t.AddSeparator();
    }
    t.Print(stdout);
    std::printf(
        "\nNOREF never takes reference faults or clears, but its page\n"
        "daemon reclaims pages in sweep order, inflating page-ins when\n"
        "memory is tight.  REF pays a page flush per clear.\n");
    return 0;
}

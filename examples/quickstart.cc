/**
 * @file
 * Quickstart: build a SPUR machine, run a small synthetic workload, and
 * print the event counters and the elapsed-time breakdown.
 *
 * Usage: example_quickstart [memory_mb] [million_refs]
 *                           [--jobs=N] [--json=FILE]
 */
#include <cstdio>
#include <cstdlib>

#include "src/common/args.h"
#include "src/common/table.h"
#include "src/core/system.h"
#include "src/runner/session.h"
#include "src/sim/config.h"
#include "src/workload/driver.h"
#include "src/workload/workloads.h"

int
main(int argc, char** argv)
{
    using namespace spur;
    const Args args(argc, argv);
    const auto& pos = args.positional();
    const uint32_t memory_mb =
        !pos.empty() ? static_cast<uint32_t>(std::atoi(pos[0].c_str())) : 8;
    const uint64_t refs =
        (pos.size() > 1 ? std::atoll(pos[1].c_str()) : 4) * 1'000'000ull;
    runner::BenchSession session("example_quickstart", args);

    // 1. Configure the prototype machine (Table 2.1 defaults).
    sim::MachineConfig config = sim::MachineConfig::Prototype(memory_mb);

    // 2. Build the system with the policies SPUR shipped with.
    core::SpurSystem system(config, policy::DirtyPolicyKind::kSpur,
                            policy::RefPolicyKind::kMiss);

    // 3. Run a slice of the CAD-developer workload.
    workload::Driver driver(system, workload::MakeWorkload1(), refs,
                            /*seed=*/1);
    driver.Run();

    // 4. Report.
    const sim::EventCounts& ev = system.events();
    Table t("Quickstart: " + std::to_string(memory_mb) + " MB, " +
            std::to_string(refs / 1'000'000) + "M refs, SPUR dirty policy, "
            "MISS ref policy");
    t.SetHeader({"event", "count"});
    auto row = [&](const char* name, sim::Event e) {
        t.AddRow({name, Table::Num(ev.Get(e))});
    };
    t.AddRow({"total refs", Table::Num(ev.TotalRefs())});
    t.AddRow({"total misses", Table::Num(ev.TotalMisses())});
    row("dirty faults (N_ds)", sim::Event::kDirtyFault);
    row("  of which zero-fill (N_zfod)", sim::Event::kDirtyFaultZfod);
    row("dirty-bit misses (N_dm)", sim::Event::kDirtyBitMiss);
    row("write hits on clean blocks (N_w-hit)",
        sim::Event::kWriteHitCleanBlock);
    row("write-miss fills (N_w-miss)", sim::Event::kWriteMissFill);
    row("ref faults", sim::Event::kRefFault);
    row("ref clears", sim::Event::kRefClear);
    row("page faults", sim::Event::kPageFault);
    row("page-ins", sim::Event::kPageIn);
    row("zero fills", sim::Event::kZeroFill);
    row("dirty page-outs", sim::Event::kPageOutDirty);
    row("clean reclaims", sim::Event::kPageReclaimClean);
    row("daemon sweeps", sim::Event::kDaemonSweep);
    row("context switches", sim::Event::kContextSwitch);
    t.Print(stdout);

    Table b("Elapsed time breakdown");
    b.SetHeader({"bucket", "seconds"});
    for (size_t i = 0; i < sim::kNumTimeBuckets; ++i) {
        const auto bucket = static_cast<sim::TimeBucket>(i);
        b.AddRow({ToString(bucket),
                  Table::Num(system.timing().Seconds(bucket), 3)});
    }
    b.AddRow({"TOTAL", Table::Num(system.timing().ElapsedSeconds(), 3)});
    b.Print(stdout);

    stats::RunRecord record;
    record.workload = "WORKLOAD1";
    record.dirty_policy = "SPUR";
    record.ref_policy = "MISS";
    record.memory_mb = memory_mb;
    record.seed = 1;
    record.refs_issued = ev.TotalRefs();
    record.page_ins = ev.Get(sim::Event::kPageIn);
    record.page_outs = ev.Get(sim::Event::kPageOutDirty);
    record.elapsed_seconds = system.timing().ElapsedSeconds();
    record.AddMetric("n_ds",
                     static_cast<double>(ev.Get(sim::Event::kDirtyFault)));
    record.AddMetric("total_misses",
                     static_cast<double>(ev.TotalMisses()));
    session.Record(std::move(record));
    return session.Finish();
}
